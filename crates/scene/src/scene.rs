//! Field-patch scene synthesis.
//!
//! The generator reproduces the statistical structure that makes Indian
//! Pines hard: a patchwork of rectangular agricultural fields whose pixels
//! are *sub-pixel mixtures* — each pixel is `α·e_class + (1−α)·e_confuser`
//! with the mixing fraction `α` drawn around the class's purity level
//! (derived from the paper's per-class accuracy; early-growth corn and
//! Buildings heavily mixed, BareSoil/Woods nearly pure), plus multiplicative
//! sensor noise. Field borders mix with the adjacent field's material, which
//! is where the MEI concentrates — exactly the coarse-resolution story the
//! paper tells for its lowest-accuracy classes.

use crate::library::ClassSpec;
use hsi::cube::{Cube, CubeDims, Interleave};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Half-width of the uniform distribution the per-pixel mixing fraction is
/// drawn from (see [`ClassSpec::purity`]).
pub const MIXING_HALFWIDTH: f64 = 0.3;

/// Scene generation parameters.
#[derive(Debug, Clone)]
pub struct SceneConfig {
    /// Samples per line.
    pub width: usize,
    /// Lines.
    pub height: usize,
    /// Spectral bands.
    pub bands: usize,
    /// Field patch width in pixels.
    pub field_width: usize,
    /// Field patch height in pixels.
    pub field_height: usize,
    /// RNG seed (scene is fully deterministic given the seed).
    pub seed: u64,
    /// Multiplicative sensor-noise sigma (fraction of signal; AVIRIS-like
    /// SNR ≈ 100:1 → 0.01).
    pub noise_fraction: f32,
    /// Mixing half-width `w` of the purity model.
    pub mixing_halfwidth: f64,
    /// Sensor gain: reflectance 1.0 maps to this radiance count.
    pub sensor_scale: f32,
    /// Additive purity calibration: shifts every class's mixing-fraction
    /// midpoint to compensate for the unmixing estimator's noise floor
    /// (calibrated so the reduced scene's overall accuracy matches the
    /// paper's 72.35%).
    pub purity_boost: f64,
}

impl SceneConfig {
    /// A laptop-scale Indian Pines analogue: enough fields for all 32
    /// classes to appear several times, 96 bands.
    pub fn reduced_indian_pines(seed: u64) -> Self {
        Self {
            width: 160,
            height: 128,
            bands: 96,
            field_width: 16,
            field_height: 16,
            seed,
            noise_fraction: 0.002,
            mixing_halfwidth: MIXING_HALFWIDTH,
            sensor_scale: 4000.0,
            purity_boost: 0.10,
        }
    }

    /// A tiny configuration for unit tests.
    pub fn tiny(seed: u64) -> Self {
        Self {
            width: 24,
            height: 24,
            bands: 16,
            field_width: 8,
            field_height: 8,
            seed,
            noise_fraction: 0.002,
            mixing_halfwidth: MIXING_HALFWIDTH,
            sensor_scale: 4000.0,
            purity_boost: 0.10,
        }
    }
}

/// A generated scene with its ground truth.
#[derive(Debug, Clone)]
pub struct SyntheticScene {
    /// The radiance cube (BIP).
    pub cube: Cube,
    /// Row-major ground-truth class index per pixel.
    pub ground_truth: Vec<u16>,
    /// Class names (indexed by ground-truth value).
    pub class_names: Vec<String>,
    /// The true endmember signature of each class.
    pub signatures: Vec<Vec<f32>>,
}

impl SyntheticScene {
    /// Ground-truth label at `(x, y)`.
    pub fn label(&self, x: usize, y: usize) -> u16 {
        self.ground_truth[y * self.cube.dims().width + x]
    }

    /// Number of classes present in the ground truth.
    pub fn class_count(&self) -> usize {
        self.class_names.len()
    }
}

/// Box–Muller standard normal from two uniforms.
fn normal(rng: &mut ChaCha8Rng) -> f32 {
    let u1: f64 = rng.gen_range(1e-9..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    ((-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()) as f32
}

/// Generate a scene from a class library.
pub fn generate(classes: &[ClassSpec], config: &SceneConfig) -> SyntheticScene {
    assert!(!classes.is_empty(), "need at least one class");
    let dims = CubeDims::new(config.width, config.height, config.bands);
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);

    let signatures: Vec<Vec<f32>> = classes
        .iter()
        .map(|c| c.signature(config.bands, config.sensor_scale))
        .collect();
    let purity: Vec<f64> = classes
        .iter()
        .map(|c| (c.purity(config.mixing_halfwidth) + config.purity_boost).min(1.0))
        .collect();

    // Interior sub-pixel mixing draws from each class's spectrally nearest
    // neighbours (a corn canopy mixes with soil and similar crops, not with
    // open water): the confuser pool is the 4 closest signatures by SID.
    let confuser_pool: Vec<Vec<usize>> = (0..classes.len())
        .map(|c| {
            let mut by_sid: Vec<(usize, f32)> = (0..classes.len())
                .filter(|&o| o != c)
                .map(|o| (o, hsi::spectral::sid(&signatures[c], &signatures[o])))
                .collect();
            by_sid.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
            by_sid.into_iter().take(4).map(|(o, _)| o).collect()
        })
        .collect();

    // Assign classes to the field grid: a shuffled round-robin so every
    // class appears, repeated until the grid is full.
    let fields_x = config.width.div_ceil(config.field_width);
    let fields_y = config.height.div_ceil(config.field_height);
    let n_fields = fields_x * fields_y;
    let mut field_class: Vec<u16> = Vec::with_capacity(n_fields);
    while field_class.len() < n_fields {
        let mut block: Vec<u16> = (0..classes.len() as u16).collect();
        // Fisher–Yates with the scene RNG.
        for i in (1..block.len()).rev() {
            let j = rng.gen_range(0..=i);
            block.swap(i, j);
        }
        field_class.extend_from_slice(&block);
    }
    field_class.truncate(n_fields);

    let class_at_field = |fx: usize, fy: usize| -> u16 {
        field_class[fy.min(fields_y - 1) * fields_x + fx.min(fields_x - 1)]
    };

    let mut ground_truth = vec![0u16; dims.pixels()];
    let mut data = vec![0.0f32; dims.samples()];
    let w = config.mixing_halfwidth;

    for y in 0..config.height {
        for x in 0..config.width {
            let fx = x / config.field_width;
            let fy = y / config.field_height;
            let class = class_at_field(fx, fy) as usize;
            ground_truth[y * config.width + x] = class as u16;

            // Border pixels mix with the adjacent field's material.
            let lx = x % config.field_width;
            let ly = y % config.field_height;
            let at_border =
                lx == 0 || ly == 0 || lx == config.field_width - 1 || ly == config.field_height - 1;
            let neighbour_class = if at_border {
                // Nearest horizontally/vertically adjacent field.
                let nfx = if lx == 0 && fx > 0 {
                    fx - 1
                } else if lx == config.field_width - 1 && fx + 1 < fields_x {
                    fx + 1
                } else {
                    fx
                };
                let nfy = if ly == 0 && fy > 0 {
                    fy - 1
                } else if ly == config.field_height - 1 && fy + 1 < fields_y {
                    fy + 1
                } else {
                    fy
                };
                class_at_field(nfx, nfy) as usize
            } else {
                // Interior: a spectrally similar confuser models sub-pixel
                // mixing within the field.
                let pool = &confuser_pool[class];
                pool[rng.gen_range(0..pool.len())]
            };

            let p = purity[class];
            let mut alpha = rng.gen_range((p - w).max(0.02)..=(p + w).min(1.0)) as f32;
            if at_border && neighbour_class != class {
                // Coarse-resolution boundary pixels are extra mixed.
                alpha *= 0.85;
            }

            let sig = &signatures[class];
            let conf = &signatures[neighbour_class];
            let base = (y * config.width + x) * config.bands;
            for b in 0..config.bands {
                let clean = alpha * sig[b] + (1.0 - alpha) * conf[b];
                let noisy = clean * (1.0 + config.noise_fraction * normal(&mut rng));
                data[base + b] = noisy.max(1.0);
            }
        }
    }

    let cube = Cube::from_vec(dims, Interleave::Bip, data).expect("dims match buffer");
    SyntheticScene {
        cube,
        ground_truth,
        class_names: classes.iter().map(|c| c.name.to_string()).collect(),
        signatures,
    }
}

/// Generate the reduced Indian Pines analogue with the full Table 3 library.
pub fn indian_pines_reduced(seed: u64) -> SyntheticScene {
    generate(
        &crate::library::indian_pines_classes(),
        &SceneConfig::reduced_indian_pines(seed),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::indian_pines_classes;

    #[test]
    fn generation_is_deterministic() {
        let classes = indian_pines_classes();
        let cfg = SceneConfig::tiny(42);
        let a = generate(&classes, &cfg);
        let b = generate(&classes, &cfg);
        assert_eq!(a.cube, b.cube);
        assert_eq!(a.ground_truth, b.ground_truth);
        // A different seed changes the scene.
        let c = generate(&classes, &SceneConfig::tiny(43));
        assert_ne!(a.cube, c.cube);
    }

    #[test]
    fn dimensions_and_labels_consistent() {
        let scene = indian_pines_reduced(1);
        let dims = scene.cube.dims();
        assert_eq!(dims.width, 160);
        assert_eq!(dims.height, 128);
        assert_eq!(dims.bands, 96);
        assert_eq!(scene.ground_truth.len(), dims.pixels());
        assert_eq!(scene.class_count(), 32);
        assert!(scene
            .ground_truth
            .iter()
            .all(|&l| (l as usize) < scene.class_count()));
    }

    #[test]
    fn every_class_appears_in_reduced_scene() {
        let scene = indian_pines_reduced(1);
        let mut seen = vec![false; scene.class_count()];
        for &l in &scene.ground_truth {
            seen[l as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 32 classes must appear");
    }

    #[test]
    fn fields_are_spatially_coherent() {
        let scene = indian_pines_reduced(1);
        // All interior pixels of the first field share one label.
        let l = scene.label(4, 4);
        for y in 2..14 {
            for x in 2..14 {
                assert_eq!(scene.label(x, y), l);
            }
        }
    }

    #[test]
    fn radiances_are_positive_and_scaled() {
        let scene = generate(&indian_pines_classes(), &SceneConfig::tiny(5));
        let data = scene.cube.data();
        assert!(data.iter().all(|&v| v >= 1.0));
        let max = data.iter().cloned().fold(0.0f32, f32::max);
        assert!(max > 100.0 && max < 10_000.0, "max radiance {max}");
    }

    #[test]
    fn purer_classes_are_closer_to_their_signature() {
        // Mean SID from pixels to their class signature must be smaller for
        // a ~98% class (BareSoil, idx 0) than a ~30% class (Buildings, 1).
        let classes = indian_pines_classes();
        let mut cfg = SceneConfig::tiny(9);
        cfg.width = 64;
        cfg.height = 64;
        let scene = generate(&classes, &cfg);
        let dims = scene.cube.dims();
        let mut err = vec![(0.0f64, 0u32); classes.len()];
        for y in 0..dims.height {
            for x in 0..dims.width {
                let l = scene.label(x, y) as usize;
                let px = scene.cube.pixel(x, y);
                let d = hsi::spectral::sid(&px, &scene.signatures[l]) as f64;
                err[l].0 += d;
                err[l].1 += 1;
            }
        }
        let mean = |i: usize| err[i].0 / err[i].1.max(1) as f64;
        assert!(
            mean(0) < mean(1),
            "BareSoil {} vs Buildings {}",
            mean(0),
            mean(1)
        );
    }

    #[test]
    fn supervised_classification_reflects_purity_pattern() {
        // Unmix against the TRUE signatures (no endmember extraction): the
        // per-class accuracy ordering must follow the purity model.
        let classes = indian_pines_classes();
        let mut cfg = SceneConfig::tiny(3);
        cfg.width = 96;
        cfg.height = 96;
        cfg.bands = 48;
        let scene = generate(&classes, &cfg);
        let sigs: Vec<&[f32]> = scene.signatures.iter().map(|s| s.as_slice()).collect();
        let model = hsi::unmix::LinearMixtureModel::new(&sigs).unwrap();
        let labels = model
            .classify_cube_batched(&scene.cube, hsi::unmix::AbundanceConstraint::SumToOneNonNeg)
            .unwrap();
        let cm =
            hsi::metrics::ConfusionMatrix::from_labels(&scene.ground_truth, &labels, classes.len())
                .unwrap();
        let per = cm.per_class_accuracy();
        // High-purity classes beat the heavily mixed ones.
        assert!(per[0] > 80.0, "BareSoil {per:?}");
        assert!(per[1] < per[0], "Buildings should trail BareSoil");
        // Overall lands in a plausible band around the paper's 72%.
        let oa = cm.overall_accuracy();
        assert!(oa > 50.0 && oa < 95.0, "overall {oa}");
    }
}
