//! Offline analysis of captured trace-event streams.
//!
//! [`analyze`] consumes a [`TraceSnapshot`] — from [`crate::snapshot_events`]
//! after an instrumented run, or from [`import_chrome_trace`] for a trace
//! file on disk — and reconstructs a per-arm performance report:
//!
//! * **Utilization timelines** — per-thread busy time (union of root spans)
//!   against the arm wall clock.
//! * **Packer overlap** — the fraction of `pipeline.pack` / `fleet.pack`
//!   time hidden under concurrent chunk shading, plus bus contention: time
//!   where two or more `gpu.xfer` transfers are in flight at once.
//! * **Critical path** — the longest *time-respecting* chain through the
//!   chunk/pack span DAG (an edge exists only where the predecessor ends
//!   before the successor begins), with per-stage self-time attribution
//!   along the winning path. Because path members never overlap in time,
//!   the critical path can never exceed the arm wall.
//! * **Fleet balance** — per-device chunk counts, steal counts, busy time
//!   and utilization against the fleet makespan.
//!
//! Streams are segmented into *arms* by `bench.arm` spans (the bench
//! harness brackets each measured configuration with one); a stream with no
//! arm markers is analyzed as a single arm named `trace`. See DESIGN.md §17
//! for the DAG reconstruction rules and the metric glossary.

use crate::{ArgValue, Event, Phase, TraceSnapshot};
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Span categories treated as chunk-execution nodes in the critical-path DAG.
const CHUNK_CATS: [&str; 2] = ["pipeline.chunk", "fleet.chunk"];
/// Span categories treated as staging (pack) nodes in the critical-path DAG.
const PACK_CATS: [&str; 2] = ["pipeline.pack", "fleet.pack"];
/// Category bracketing one measured bench configuration.
const ARM_CAT: &str = "bench.arm";
/// Category of per-stage spans nested inside chunk spans.
const STAGE_CAT: &str = "pipeline.stage";
/// Category of host↔device transfer spans (the shared-bus occupancy signal).
const XFER_CAT: &str = "gpu.xfer";

// ---------------------------------------------------------------------------
// Span reconstruction
// ---------------------------------------------------------------------------

/// One reconstructed span: a begin/end pair matched on its thread's stack.
#[derive(Debug, Clone)]
pub struct SpanRec {
    /// Sink thread id the span was recorded on.
    pub tid: u64,
    /// Category of the begin event.
    pub cat: &'static str,
    /// Span name.
    pub name: String,
    /// Begin timestamp, nanoseconds since the trace epoch.
    pub start_ns: u64,
    /// End timestamp. An end-less begin (a span still open when the stream
    /// was captured) closes at the stream's maximum timestamp; an
    /// begin-less end is dropped.
    pub end_ns: u64,
    /// Nesting depth on its thread at begin time (0 = root span).
    pub depth: usize,
    /// Arguments recorded on the begin event.
    pub args: Vec<(&'static str, ArgValue)>,
}

impl SpanRec {
    fn dur_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }

    fn arg_u64(&self, key: &str) -> Option<u64> {
        self.args
            .iter()
            .find(|(k, _)| *k == key)
            .and_then(|(_, v)| match v {
                ArgValue::U64(n) => Some(*n),
                ArgValue::I64(n) => u64::try_from(*n).ok(),
                _ => None,
            })
    }
}

/// Rebuild matched spans from an event stream. Events must be in per-thread
/// record order (the order [`crate::snapshot_events`] and
/// [`import_chrome_trace`] provide); begin/end pairing uses one stack per
/// thread, so ragged interleavings across threads are fine.
pub fn build_spans(events: &[Event]) -> Vec<SpanRec> {
    let max_ts = events.iter().map(|e| e.ts_ns).max().unwrap_or(0);
    let mut spans: Vec<SpanRec> = Vec::new();
    let mut stacks: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
    for ev in events {
        let stack = stacks.entry(ev.tid).or_default();
        match ev.phase {
            Phase::Begin => {
                let depth = stack.len();
                stack.push(spans.len());
                spans.push(SpanRec {
                    tid: ev.tid,
                    cat: ev.cat,
                    name: ev.name.clone(),
                    start_ns: ev.ts_ns,
                    end_ns: max_ts,
                    depth,
                    args: ev.args.clone(),
                });
            }
            Phase::End => {
                if let Some(idx) = stack.pop() {
                    spans[idx].end_ns = ev.ts_ns.max(spans[idx].start_ns);
                }
            }
            Phase::Instant | Phase::Counter => {}
        }
    }
    spans
}

// ---------------------------------------------------------------------------
// Interval arithmetic
// ---------------------------------------------------------------------------

/// Merge intervals into a sorted, disjoint union.
fn merge_intervals(mut iv: Vec<(u64, u64)>) -> Vec<(u64, u64)> {
    iv.retain(|(a, b)| b > a);
    iv.sort_unstable();
    let mut out: Vec<(u64, u64)> = Vec::with_capacity(iv.len());
    for (a, b) in iv {
        match out.last_mut() {
            Some((_, e)) if a <= *e => *e = (*e).max(b),
            _ => out.push((a, b)),
        }
    }
    out
}

fn union_len(iv: &[(u64, u64)]) -> u64 {
    iv.iter().map(|(a, b)| b - a).sum()
}

/// Length of `[a, b)` ∩ the (sorted, disjoint) union.
fn intersect_len(a: u64, b: u64, union: &[(u64, u64)]) -> u64 {
    union
        .iter()
        .map(|&(s, e)| e.min(b).saturating_sub(s.max(a)))
        .sum()
}

/// Sweep-line over intervals: returns `(any_busy, contended)` — total time
/// with ≥ 1 interval active and with ≥ 2 active.
fn occupancy(iv: &[(u64, u64)]) -> (u64, u64) {
    let mut points: Vec<(u64, i64)> = Vec::with_capacity(iv.len() * 2);
    for &(a, b) in iv {
        if b > a {
            points.push((a, 1));
            points.push((b, -1));
        }
    }
    points.sort_unstable();
    let (mut busy, mut contended) = (0u64, 0u64);
    let mut active = 0i64;
    let mut prev = 0u64;
    for (ts, delta) in points {
        if active >= 1 {
            busy += ts - prev;
        }
        if active >= 2 {
            contended += ts - prev;
        }
        active += delta;
        prev = ts;
    }
    (busy, contended)
}

// ---------------------------------------------------------------------------
// Report structures
// ---------------------------------------------------------------------------

/// Busy time and utilization for one timeline row (thread).
#[derive(Debug, Clone, PartialEq)]
pub struct ThreadUtil {
    /// Sink thread id.
    pub tid: u64,
    /// Registered thread name (`thread-<tid>` if never named).
    pub name: String,
    /// Union of root-span time on this thread, seconds.
    pub busy_s: f64,
    /// `busy_s / wall_s`, clamped to `[0, 1]`.
    pub utilization: f64,
}

/// Pack-overlap and bus-contention accounting for one arm.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct OverlapStats {
    /// Total `pipeline.pack` + `fleet.pack` span time, seconds.
    pub pack_total_s: f64,
    /// Pack time overlapped by chunk execution on any thread, seconds.
    pub pack_hidden_s: f64,
    /// Time with at least one `gpu.xfer` transfer in flight, seconds.
    pub bus_busy_s: f64,
    /// Time with two or more transfers in flight at once, seconds.
    pub bus_contended_s: f64,
}

impl OverlapStats {
    /// Fraction of pack time hidden under shading. An arm that never packs
    /// (single-chunk plans) is perfectly overlapped by definition: `1.0`.
    pub fn pack_overlap_efficiency(&self) -> f64 {
        if self.pack_total_s <= 0.0 {
            1.0
        } else {
            (self.pack_hidden_s / self.pack_total_s).clamp(0.0, 1.0)
        }
    }
}

/// The longest time-respecting chain through the chunk/pack DAG.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CriticalPath {
    /// Summed duration of path members, seconds. Path members never overlap
    /// in time, so this never exceeds the arm wall.
    pub total_s: f64,
    /// Number of spans on the path.
    pub nodes: usize,
    /// Self-time attribution along the path, `(bucket, seconds)` sorted by
    /// bucket name. Buckets are the `pipeline.stage` names (`upload`,
    /// `distance`, …) plus `pack` (staging nodes) and `other`
    /// (chunk time not covered by any stage span).
    pub stages: Vec<(String, f64)>,
}

/// Per-device load for one fleet arm.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceLoad {
    /// Device ordinal (the `device` span argument).
    pub device: u64,
    /// Timeline-row name of the device thread (e.g. `device0.7800gtx`).
    pub label: String,
    /// Chunks executed.
    pub chunks: u64,
    /// Of those, chunks obtained by stealing another device's queue.
    pub stolen: u64,
    /// Summed `fleet.chunk` span time, seconds.
    pub busy_s: f64,
    /// `busy_s` / fleet makespan, clamped to `[0, 1]`.
    pub utilization: f64,
}

/// Fleet load-balance metrics (present when the arm ran `fleet.chunk` spans).
#[derive(Debug, Clone, PartialEq)]
pub struct FleetBalance {
    /// First chunk begin → last chunk end across all devices, seconds.
    pub makespan_s: f64,
    /// Total stolen chunks across devices.
    pub steals: u64,
    /// Per-device load rows, sorted by device ordinal.
    pub devices: Vec<DeviceLoad>,
}

impl FleetBalance {
    /// Mean device busy time over max device busy time — `1.0` is a
    /// perfectly balanced fleet.
    pub fn load_balance(&self) -> f64 {
        let max = self.devices.iter().map(|d| d.busy_s).fold(0.0f64, f64::max);
        if max <= 0.0 || self.devices.is_empty() {
            return 1.0;
        }
        let mean = self.devices.iter().map(|d| d.busy_s).sum::<f64>() / self.devices.len() as f64;
        (mean / max).clamp(0.0, 1.0)
    }
}

/// Analysis of one bench arm (one `bench.arm` bracket, or the whole stream).
#[derive(Debug, Clone, PartialEq)]
pub struct ArmAnalysis {
    /// Arm name (`bench.arm` span name, or `trace` for unbracketed streams).
    pub name: String,
    /// Arm wall clock, seconds.
    pub wall_s: f64,
    /// Per-thread utilization rows, sorted by tid.
    pub threads: Vec<ThreadUtil>,
    /// Pack-overlap and bus-contention accounting.
    pub overlap: OverlapStats,
    /// Longest time-respecting chain through the chunk/pack DAG.
    pub critical_path: CriticalPath,
    /// Fleet load balance; `None` when the arm ran no `fleet.chunk` spans.
    pub fleet: Option<FleetBalance>,
}

/// Full analyzer output: one report per arm, in chronological order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TraceAnalysis {
    /// Per-arm reports.
    pub arms: Vec<ArmAnalysis>,
}

// ---------------------------------------------------------------------------
// The analyzer
// ---------------------------------------------------------------------------

/// Analyze a captured snapshot: segment into arms and compute utilization,
/// overlap, critical-path, and fleet-balance reports for each.
pub fn analyze(snap: &TraceSnapshot) -> TraceAnalysis {
    let arms = segment_arms(&snap.events)
        .into_iter()
        .map(|(name, bounds, events)| analyze_arm(name, bounds, &events, &snap.threads))
        .collect();
    TraceAnalysis { arms }
}

/// Split the stream into `(name, (start, end), events)` per `bench.arm`
/// bracket. Arm marker events themselves are excluded from the slices. A
/// stream without brackets is one arm named `trace` spanning all events.
#[allow(clippy::type_complexity)]
fn segment_arms(events: &[Event]) -> Vec<(String, (u64, u64), Vec<Event>)> {
    let mut arms: Vec<SpanRec> = build_spans(events)
        .into_iter()
        .filter(|s| s.cat == ARM_CAT)
        .collect();
    if arms.is_empty() {
        let lo = events.iter().map(|e| e.ts_ns).min().unwrap_or(0);
        let hi = events.iter().map(|e| e.ts_ns).max().unwrap_or(0);
        return vec![("trace".to_owned(), (lo, hi), events.to_vec())];
    }
    arms.sort_by_key(|s| (s.start_ns, s.end_ns));
    arms.into_iter()
        .map(|arm| {
            let slice: Vec<Event> = events
                .iter()
                .filter(|e| e.cat != ARM_CAT && e.ts_ns >= arm.start_ns && e.ts_ns <= arm.end_ns)
                .cloned()
                .collect();
            (arm.name.clone(), (arm.start_ns, arm.end_ns), slice)
        })
        .collect()
}

fn thread_name(threads: &[(u64, String)], tid: u64) -> String {
    threads
        .iter()
        .find(|(t, _)| *t == tid)
        .map(|(_, n)| n.clone())
        .unwrap_or_else(|| format!("thread-{tid}"))
}

fn ns_to_s(ns: u64) -> f64 {
    ns as f64 / 1e9
}

fn analyze_arm(
    name: String,
    bounds: (u64, u64),
    events: &[Event],
    threads: &[(u64, String)],
) -> ArmAnalysis {
    let spans = build_spans(events);
    let wall_ns = bounds.1.saturating_sub(bounds.0);
    let wall_s = ns_to_s(wall_ns);

    // Per-thread busy: union of root spans (roots on one thread are disjoint
    // by stack construction, but a union keeps clamped streams safe too).
    let mut per_tid: BTreeMap<u64, Vec<(u64, u64)>> = BTreeMap::new();
    for s in spans.iter().filter(|s| s.depth == 0) {
        per_tid
            .entry(s.tid)
            .or_default()
            .push((s.start_ns, s.end_ns));
    }
    let thread_rows: Vec<ThreadUtil> = per_tid
        .into_iter()
        .map(|(tid, iv)| {
            let busy_ns = union_len(&merge_intervals(iv));
            let utilization = if wall_ns == 0 {
                0.0
            } else {
                (busy_ns as f64 / wall_ns as f64).clamp(0.0, 1.0)
            };
            ThreadUtil {
                tid,
                name: thread_name(threads, tid),
                busy_s: ns_to_s(busy_ns),
                utilization,
            }
        })
        .collect();

    ArmAnalysis {
        overlap: overlap_stats(&spans),
        critical_path: critical_path(&spans),
        fleet: fleet_balance(&spans, threads),
        name,
        wall_s,
        threads: thread_rows,
    }
}

fn overlap_stats(spans: &[SpanRec]) -> OverlapStats {
    let chunk_union = merge_intervals(
        spans
            .iter()
            .filter(|s| CHUNK_CATS.contains(&s.cat))
            .map(|s| (s.start_ns, s.end_ns))
            .collect(),
    );
    let (mut pack_total, mut pack_hidden) = (0u64, 0u64);
    for s in spans.iter().filter(|s| PACK_CATS.contains(&s.cat)) {
        pack_total += s.dur_ns();
        pack_hidden += intersect_len(s.start_ns, s.end_ns, &chunk_union);
    }
    let xfers: Vec<(u64, u64)> = spans
        .iter()
        .filter(|s| s.cat == XFER_CAT)
        .map(|s| (s.start_ns, s.end_ns))
        .collect();
    let (bus_busy, bus_contended) = occupancy(&xfers);
    OverlapStats {
        pack_total_s: ns_to_s(pack_total),
        pack_hidden_s: ns_to_s(pack_hidden.min(pack_total)),
        bus_busy_s: ns_to_s(bus_busy),
        bus_contended_s: ns_to_s(bus_contended),
    }
}

/// Longest path through the chunk/pack DAG. Nodes are chunk and pack spans
/// (falling back to root spans when a stream has neither); edges are
/// time-respecting only:
///
/// * consecutive nodes on the same thread, when the earlier one ends before
///   the later one begins (serial execution order);
/// * `pack(chunk=j)` → `chunk(index=j)`, when the pack ends before the
///   chunk begins (staging feeds execution).
fn critical_path(spans: &[SpanRec]) -> CriticalPath {
    let mut nodes: Vec<usize> = (0..spans.len())
        .filter(|&i| CHUNK_CATS.contains(&spans[i].cat) || PACK_CATS.contains(&spans[i].cat))
        .collect();
    if nodes.is_empty() {
        nodes = (0..spans.len()).filter(|&i| spans[i].depth == 0).collect();
    }
    if nodes.is_empty() {
        return CriticalPath::default();
    }
    nodes.sort_by_key(|&i| (spans[i].start_ns, spans[i].end_ns));

    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
    let push_edge = |preds: &mut Vec<Vec<usize>>, from: usize, to: usize| {
        // Keep the DP a forward pass: only edges that respect sorted order.
        if from < to && spans[nodes[from]].end_ns <= spans[nodes[to]].start_ns {
            preds[to].push(from);
        }
    };
    // Same-thread serial order.
    let mut by_tid: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
    for (p, &i) in nodes.iter().enumerate() {
        by_tid.entry(spans[i].tid).or_default().push(p);
    }
    for list in by_tid.values() {
        for w in list.windows(2) {
            push_edge(&mut preds, w[0], w[1]);
        }
    }
    // Staging → execution: pack(chunk=j) feeds chunk(index=j).
    let mut chunk_by_index: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
    for (p, &i) in nodes.iter().enumerate() {
        if CHUNK_CATS.contains(&spans[i].cat) {
            if let Some(j) = spans[i].arg_u64("index") {
                chunk_by_index.entry(j).or_default().push(p);
            }
        }
    }
    for (p, &i) in nodes.iter().enumerate() {
        if PACK_CATS.contains(&spans[i].cat) {
            if let Some(j) = spans[i].arg_u64("chunk") {
                for &c in chunk_by_index.get(&j).into_iter().flatten() {
                    push_edge(&mut preds, p, c);
                }
            }
        }
    }
    // Forward DP for the heaviest chain.
    let n = nodes.len();
    let mut dp = vec![0u64; n];
    let mut parent: Vec<Option<usize>> = vec![None; n];
    for p in 0..n {
        let mut best = 0u64;
        for &q in &preds[p] {
            if dp[q] > best {
                best = dp[q];
                parent[p] = Some(q);
            }
        }
        dp[p] = best + spans[nodes[p]].dur_ns();
    }
    let end = (0..n).max_by_key(|&p| dp[p]).unwrap_or(0);
    let mut path = vec![end];
    while let Some(q) = parent[*path.last().unwrap()] {
        path.push(q);
    }
    path.reverse();

    // Per-stage attribution along the path.
    let mut buckets: BTreeMap<String, u64> = BTreeMap::new();
    for &p in &path {
        let s = &spans[nodes[p]];
        if PACK_CATS.contains(&s.cat) {
            *buckets.entry("pack".to_owned()).or_default() += s.dur_ns();
        } else if s.cat == STAGE_CAT {
            *buckets.entry(s.name.clone()).or_default() += s.dur_ns();
        } else {
            let mut covered = 0u64;
            for st in spans.iter().filter(|st| {
                st.cat == STAGE_CAT
                    && st.tid == s.tid
                    && st.depth > s.depth
                    && st.start_ns >= s.start_ns
                    && st.end_ns <= s.end_ns
            }) {
                *buckets.entry(st.name.clone()).or_default() += st.dur_ns();
                covered += st.dur_ns();
            }
            *buckets.entry("other".to_owned()).or_default() += s.dur_ns().saturating_sub(covered);
        }
    }
    CriticalPath {
        total_s: ns_to_s(dp[end]),
        nodes: path.len(),
        stages: buckets.into_iter().map(|(k, v)| (k, ns_to_s(v))).collect(),
    }
}

fn fleet_balance(spans: &[SpanRec], threads: &[(u64, String)]) -> Option<FleetBalance> {
    let fchunks: Vec<&SpanRec> = spans.iter().filter(|s| s.cat == "fleet.chunk").collect();
    if fchunks.is_empty() {
        return None;
    }
    let lo = fchunks.iter().map(|s| s.start_ns).min().unwrap_or(0);
    let hi = fchunks.iter().map(|s| s.end_ns).max().unwrap_or(0);
    let makespan_ns = hi.saturating_sub(lo);
    struct Acc {
        tid: u64,
        chunks: u64,
        stolen: u64,
        busy_ns: u64,
    }
    let mut per_dev: BTreeMap<u64, Acc> = BTreeMap::new();
    for s in &fchunks {
        let dev = s.arg_u64("device").unwrap_or(u64::MAX);
        let acc = per_dev.entry(dev).or_insert(Acc {
            tid: s.tid,
            chunks: 0,
            stolen: 0,
            busy_ns: 0,
        });
        acc.chunks += 1;
        acc.stolen += s.arg_u64("stolen").unwrap_or(0).min(1);
        acc.busy_ns += s.dur_ns();
    }
    let devices: Vec<DeviceLoad> = per_dev
        .into_iter()
        .map(|(device, acc)| DeviceLoad {
            device,
            label: thread_name(threads, acc.tid),
            chunks: acc.chunks,
            stolen: acc.stolen,
            busy_s: ns_to_s(acc.busy_ns),
            utilization: if makespan_ns == 0 {
                0.0
            } else {
                (acc.busy_ns as f64 / makespan_ns as f64).clamp(0.0, 1.0)
            },
        })
        .collect();
    Some(FleetBalance {
        makespan_s: ns_to_s(makespan_ns),
        steals: devices.iter().map(|d| d.stolen).sum(),
        devices,
    })
}

// ---------------------------------------------------------------------------
// Text rendering
// ---------------------------------------------------------------------------

fn pct(frac: f64) -> String {
    format!("{:.1}%", frac * 100.0)
}

/// Render an analysis as an aligned plain-text report (shared by
/// `tables -- analyze` and the `amc_profile` example).
pub fn render_text(analysis: &TraceAnalysis) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for arm in &analysis.arms {
        let _ = writeln!(out, "arm {:<24} wall {:>9.3}s", arm.name, arm.wall_s);
        let cp = &arm.critical_path;
        let share = if arm.wall_s > 0.0 {
            cp.total_s / arm.wall_s
        } else {
            0.0
        };
        let _ = writeln!(
            out,
            "  critical path {:>9.3}s  ({} of wall, {} nodes)",
            cp.total_s,
            pct(share),
            cp.nodes
        );
        let mut stages = cp.stages.clone();
        stages.sort_by(|a, b| b.1.total_cmp(&a.1));
        for (stage, s) in stages.iter().filter(|(_, s)| *s > 0.0) {
            let stage_share = if cp.total_s > 0.0 {
                s / cp.total_s
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "    {:<12} {:>9.3}s  {:>6}",
                stage,
                s,
                pct(stage_share)
            );
        }
        let ov = &arm.overlap;
        let _ = writeln!(
            out,
            "  pack overlap  {:>9.3}s hidden of {:>9.3}s  ({} efficient)",
            ov.pack_hidden_s,
            ov.pack_total_s,
            pct(ov.pack_overlap_efficiency())
        );
        let _ = writeln!(
            out,
            "  bus           {:>9.3}s busy, {:>9.3}s contended",
            ov.bus_busy_s, ov.bus_contended_s
        );
        for t in &arm.threads {
            let _ = writeln!(
                out,
                "  thread {:<20} busy {:>9.3}s  util {:>6}",
                t.name,
                t.busy_s,
                pct(t.utilization)
            );
        }
        if let Some(fleet) = &arm.fleet {
            let _ = writeln!(
                out,
                "  fleet makespan {:>9.3}s  balance {:.3}  steals {}",
                fleet.makespan_s,
                fleet.load_balance(),
                fleet.steals
            );
            for d in &fleet.devices {
                let _ = writeln!(
                    out,
                    "    {:<20} chunks {:>3} ({} stolen)  busy {:>9.3}s  util {:>6}",
                    d.label,
                    d.chunks,
                    d.stolen,
                    d.busy_s,
                    pct(d.utilization)
                );
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Chrome trace-event import
// ---------------------------------------------------------------------------

/// Intern a category/argument key so imported events can share the
/// `&'static str` fields of [`Event`]. The pool is bounded by the set of
/// distinct category and key names in a trace (a small closed vocabulary).
fn intern(s: &str) -> &'static str {
    static POOL: Mutex<Vec<&'static str>> = Mutex::new(Vec::new());
    let mut pool = POOL.lock().unwrap_or_else(|p| p.into_inner());
    if let Some(&hit) = pool.iter().find(|x| **x == s) {
        return hit;
    }
    let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
    pool.push(leaked);
    leaked
}

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    fn str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

struct Parser<'a> {
    s: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            s: s.as_bytes(),
            i: 0,
        }
    }

    fn err(&self, msg: &str) -> String {
        format!("trace JSON parse error at byte {}: {msg}", self.i)
    }

    fn skip_ws(&mut self) {
        while self.i < self.s.len() && self.s[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.s.get(self.i).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(_) => self.number(),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.s[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.i;
        while self
            .s
            .get(self.i)
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.i += 1;
        }
        std::str::from_utf8(&self.s[start..self.i])
            .ok()
            .and_then(|t| t.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| self.err("bad number"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.s.get(self.i).copied() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    let esc = self
                        .s
                        .get(self.i)
                        .copied()
                        .ok_or_else(|| self.err("bad escape"))?;
                    self.i += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .s
                                .get(self.i..self.i + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            self.i += 4;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Copy a run of plain bytes (UTF-8 passes through intact).
                    let start = self.i;
                    while self.s.get(self.i).is_some_and(|&c| c != b'"' && c != b'\\') {
                        self.i += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.s[start..self.i])
                            .map_err(|_| self.err("invalid UTF-8"))?,
                    );
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.value()?));
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

fn arg_from_json(v: &Json) -> ArgValue {
    match v {
        Json::Num(n) if n.fract() == 0.0 && *n >= 0.0 && *n < 9.22e18 => ArgValue::U64(*n as u64),
        Json::Num(n) if n.fract() == 0.0 && *n < 0.0 && *n > -9.22e18 => ArgValue::I64(*n as i64),
        Json::Num(n) => ArgValue::F64(*n),
        Json::Str(s) => ArgValue::Str(s.clone()),
        Json::Bool(b) => ArgValue::U64(*b as u64),
        _ => ArgValue::Str(String::new()),
    }
}

/// Parse a Chrome trace-event JSON document (the [`crate::chrome_trace_json`]
/// format, or any `{"traceEvents": [...]}` / bare-array trace) back into a
/// [`TraceSnapshot`]. `X` (complete) events are split into begin/end pairs;
/// metadata `thread_name` events populate the thread table.
pub fn import_chrome_trace(text: &str) -> Result<TraceSnapshot, String> {
    let mut parser = Parser::new(text);
    let doc = parser.value()?;
    let raw = match (&doc, doc.get("traceEvents")) {
        (_, Some(Json::Arr(evs))) => evs,
        (Json::Arr(evs), _) => evs,
        _ => return Err("no traceEvents array".to_owned()),
    };
    let mut events: Vec<Event> = Vec::with_capacity(raw.len());
    let mut threads: Vec<(u64, String)> = Vec::new();
    for ev in raw {
        let ph = ev.get("ph").and_then(Json::str).unwrap_or("");
        let tid = ev.get("tid").and_then(Json::num).unwrap_or(0.0) as u64;
        let name = ev.get("name").and_then(Json::str).unwrap_or("").to_owned();
        if ph == "M" {
            if name == "thread_name" {
                if let Some(n) = ev
                    .get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Json::str)
                {
                    if !threads.iter().any(|(t, _)| *t == tid) {
                        threads.push((tid, n.to_owned()));
                    }
                }
            }
            continue;
        }
        let ts_us = match ev.get("ts").and_then(Json::num) {
            Some(ts) => ts,
            None => continue,
        };
        let ts_ns = (ts_us * 1e3).round().max(0.0) as u64;
        let cat = intern(ev.get("cat").and_then(Json::str).unwrap_or(""));
        let args: Vec<(&'static str, ArgValue)> = match ev.get("args") {
            Some(Json::Obj(fields)) => fields
                .iter()
                .map(|(k, v)| (intern(k), arg_from_json(v)))
                .collect(),
            _ => Vec::new(),
        };
        match ph {
            "B" => events.push(Event {
                ts_ns,
                tid,
                phase: Phase::Begin,
                cat,
                name,
                args,
            }),
            "E" => events.push(Event {
                ts_ns,
                tid,
                phase: Phase::End,
                cat,
                name,
                args,
            }),
            "i" | "I" => events.push(Event {
                ts_ns,
                tid,
                phase: Phase::Instant,
                cat,
                name,
                args,
            }),
            "C" => events.push(Event {
                ts_ns,
                tid,
                phase: Phase::Counter,
                cat,
                name,
                args,
            }),
            "X" => {
                let dur_ns = (ev.get("dur").and_then(Json::num).unwrap_or(0.0) * 1e3)
                    .round()
                    .max(0.0) as u64;
                events.push(Event {
                    ts_ns,
                    tid,
                    phase: Phase::Begin,
                    cat,
                    name: name.clone(),
                    args,
                });
                events.push(Event {
                    ts_ns: ts_ns + dur_ns,
                    tid,
                    phase: Phase::End,
                    cat,
                    name,
                    args: Vec::new(),
                });
            }
            _ => {}
        }
    }
    // Restore global time order; the stable sort preserves per-thread
    // begin-before-end ordering at equal timestamps.
    events.sort_by_key(|e| e.ts_ns);
    Ok(TraceSnapshot { events, threads })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ts_ns: u64, tid: u64, phase: Phase, cat: &'static str, name: &str) -> Event {
        Event {
            ts_ns,
            tid,
            phase,
            cat,
            name: name.to_owned(),
            args: Vec::new(),
        }
    }

    fn ev_args(
        ts_ns: u64,
        tid: u64,
        phase: Phase,
        cat: &'static str,
        name: &str,
        args: &[(&'static str, u64)],
    ) -> Event {
        Event {
            args: args.iter().map(|&(k, v)| (k, ArgValue::U64(v))).collect(),
            ..ev(ts_ns, tid, phase, cat, name)
        }
    }

    #[test]
    fn spans_rebuild_with_depth_and_unclosed_tail() {
        let events = vec![
            ev(0, 1, Phase::Begin, "a", "outer"),
            ev(10, 1, Phase::Begin, "b", "inner"),
            ev(20, 1, Phase::End, "b", "inner"),
            ev(30, 1, Phase::Begin, "c", "dangling"),
            ev(40, 2, Phase::Begin, "a", "other-thread"),
            ev(50, 2, Phase::End, "a", "other-thread"),
        ];
        let spans = build_spans(&events);
        assert_eq!(spans.len(), 4);
        assert_eq!(
            (spans[0].depth, spans[0].start_ns, spans[0].end_ns),
            (0, 0, 50)
        );
        assert_eq!(
            (spans[1].depth, spans[1].start_ns, spans[1].end_ns),
            (1, 10, 20)
        );
        // Unclosed spans end at the stream max.
        assert_eq!(spans[2].end_ns, 50);
        assert_eq!(spans[3].tid, 2);
    }

    #[test]
    fn interval_union_and_intersection() {
        let u = merge_intervals(vec![(10, 20), (15, 30), (40, 50), (50, 50)]);
        assert_eq!(u, vec![(10, 30), (40, 50)]);
        assert_eq!(union_len(&u), 30);
        assert_eq!(intersect_len(0, 100, &u), 30);
        assert_eq!(intersect_len(25, 45, &u), 10);
        assert_eq!(intersect_len(30, 40, &u), 0);
    }

    #[test]
    fn occupancy_counts_concurrency() {
        // [0,10) and [5,20) overlap on [5,10); [30,30) is empty.
        let (busy, contended) = occupancy(&[(0, 10), (5, 20), (30, 30)]);
        assert_eq!(busy, 20);
        assert_eq!(contended, 5);
    }

    #[test]
    fn pack_fully_hidden_under_chunks_scores_one() {
        let events = vec![
            ev_args(
                0,
                1,
                Phase::Begin,
                "pipeline.chunk",
                "chunk",
                &[("index", 0)],
            ),
            ev_args(
                10,
                2,
                Phase::Begin,
                "pipeline.pack",
                "pack",
                &[("chunk", 1)],
            ),
            ev(60, 2, Phase::End, "pipeline.pack", "pack"),
            ev(100, 1, Phase::End, "pipeline.chunk", "chunk"),
            ev_args(
                100,
                1,
                Phase::Begin,
                "pipeline.chunk",
                "chunk",
                &[("index", 1)],
            ),
            ev(180, 1, Phase::End, "pipeline.chunk", "chunk"),
        ];
        let snap = TraceSnapshot {
            events,
            threads: vec![(1, "main".into()), (2, "packer".into())],
        };
        let analysis = analyze(&snap);
        assert_eq!(analysis.arms.len(), 1);
        let arm = &analysis.arms[0];
        assert_eq!(arm.name, "trace");
        assert!((arm.overlap.pack_total_s - 50e-9).abs() < 1e-15);
        assert!((arm.overlap.pack_overlap_efficiency() - 1.0).abs() < 1e-12);
        // Critical path: chunk0 (100) → chunk1 (80), not pack (50) → chunk1.
        assert_eq!(arm.critical_path.nodes, 2);
        assert!((arm.critical_path.total_s - 180e-9).abs() < 1e-15);
    }

    #[test]
    fn critical_path_routes_through_slow_packs() {
        // Packing dominates: chunk spans are short, packs are long, so the
        // heaviest chain is pack1 → pack2 → chunk2.
        let events = vec![
            ev_args(
                0,
                1,
                Phase::Begin,
                "pipeline.chunk",
                "chunk",
                &[("index", 0)],
            ),
            ev_args(5, 2, Phase::Begin, "pipeline.pack", "pack", &[("chunk", 1)]),
            ev(10, 1, Phase::End, "pipeline.chunk", "chunk"),
            ev(100, 2, Phase::End, "pipeline.pack", "pack"),
            ev_args(
                100,
                1,
                Phase::Begin,
                "pipeline.chunk",
                "chunk",
                &[("index", 1)],
            ),
            ev_args(
                105,
                2,
                Phase::Begin,
                "pipeline.pack",
                "pack",
                &[("chunk", 2)],
            ),
            ev(110, 1, Phase::End, "pipeline.chunk", "chunk"),
            ev(200, 2, Phase::End, "pipeline.pack", "pack"),
            ev_args(
                200,
                1,
                Phase::Begin,
                "pipeline.chunk",
                "chunk",
                &[("index", 2)],
            ),
            ev(210, 1, Phase::End, "pipeline.chunk", "chunk"),
        ];
        let snap = TraceSnapshot {
            events,
            threads: Vec::new(),
        };
        let arm = &analyze(&snap).arms[0];
        // pack1 (95) + pack2 (95) + chunk2 (10) = 200 beats chunks 10+10+10.
        assert_eq!(arm.critical_path.nodes, 3);
        assert!((arm.critical_path.total_s - 200e-9).abs() < 1e-15);
        let pack_s: f64 = arm
            .critical_path
            .stages
            .iter()
            .filter(|(k, _)| k == "pack")
            .map(|(_, v)| *v)
            .sum();
        assert!((pack_s - 190e-9).abs() < 1e-15);
    }

    #[test]
    fn arms_segment_the_stream() {
        let events = vec![
            ev(0, 1, Phase::Begin, "bench.arm", "headline"),
            ev(10, 1, Phase::Begin, "pipeline.chunk", "chunk"),
            ev(90, 1, Phase::End, "pipeline.chunk", "chunk"),
            ev(100, 1, Phase::End, "bench.arm", "headline"),
            ev(200, 1, Phase::Begin, "bench.arm", "fleet:dual"),
            ev_args(
                210,
                2,
                Phase::Begin,
                "fleet.chunk",
                "chunk",
                &[("device", 0), ("index", 0), ("stolen", 0)],
            ),
            ev(290, 2, Phase::End, "fleet.chunk", "chunk"),
            ev(300, 1, Phase::End, "bench.arm", "fleet:dual"),
        ];
        let snap = TraceSnapshot {
            events,
            threads: vec![(2, "device0.7800gtx".into())],
        };
        let analysis = analyze(&snap);
        let names: Vec<&str> = analysis.arms.iter().map(|a| a.name.as_str()).collect();
        assert_eq!(names, ["headline", "fleet:dual"]);
        assert!(analysis.arms[0].fleet.is_none());
        let fleet = analysis.arms[1].fleet.as_ref().unwrap();
        assert_eq!(fleet.devices.len(), 1);
        assert_eq!(fleet.devices[0].label, "device0.7800gtx");
        assert!((analysis.arms[1].wall_s - 100e-9).abs() < 1e-15);
    }

    #[test]
    fn import_round_trips_the_exporter_format() {
        let json = r#"{"traceEvents":[
            {"name":"process_name","ph":"M","pid":1,"tid":0,"args":{"name":"hyperspec"}},
            {"name":"thread_name","ph":"M","pid":1,"tid":3,"args":{"name":"packer"}},
            {"name":"chunk","cat":"pipeline.chunk","ph":"B","pid":1,"tid":1,"ts":0.100,"args":{"index":0,"lines":64}},
            {"name":"pack","cat":"pipeline.pack","ph":"B","pid":1,"tid":3,"ts":0.200,"args":{"chunk":1}},
            {"name":"pack","cat":"pipeline.pack","ph":"E","pid":1,"tid":3,"ts":0.300},
            {"name":"chunk","cat":"pipeline.chunk","ph":"E","pid":1,"tid":1,"ts":0.500},
            {"name":"work","cat":"ext","ph":"X","pid":1,"tid":4,"ts":1.000,"dur":2.000}
        ],
        "displayTimeUnit":"ms"}"#;
        let snap = import_chrome_trace(json).unwrap();
        assert_eq!(snap.threads, vec![(3, "packer".to_owned())]);
        assert_eq!(snap.events.len(), 6, "X splits into B/E");
        let spans = build_spans(&snap.events);
        assert_eq!(spans.len(), 3);
        let chunk = spans.iter().find(|s| s.cat == "pipeline.chunk").unwrap();
        assert_eq!((chunk.start_ns, chunk.end_ns), (100, 500));
        assert_eq!(chunk.arg_u64("lines"), Some(64));
        let x = spans.iter().find(|s| s.cat == "ext").unwrap();
        assert_eq!((x.start_ns, x.end_ns), (1000, 3000));
    }

    #[test]
    fn import_rejects_garbage() {
        assert!(import_chrome_trace("not json").is_err());
        assert!(import_chrome_trace("{\"other\":1}").is_err());
        assert!(import_chrome_trace("{\"traceEvents\":[{]}").is_err());
    }

    #[test]
    fn render_text_mentions_every_section() {
        let events = vec![
            ev_args(
                0,
                1,
                Phase::Begin,
                "pipeline.chunk",
                "chunk",
                &[("index", 0)],
            ),
            ev(100, 1, Phase::End, "pipeline.chunk", "chunk"),
        ];
        let snap = TraceSnapshot {
            events,
            threads: vec![(1, "main".into())],
        };
        let text = render_text(&analyze(&snap));
        for needle in [
            "arm trace",
            "critical path",
            "pack overlap",
            "bus",
            "thread main",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }
}
