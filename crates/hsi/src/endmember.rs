//! Endmember selection from the MEI image (step 3 of AMC).
//!
//! The paper selects "the set of c pixel vectors in f with higher associated
//! score in the resulting MEI image". A literal top-c by score tends to pick
//! the same spectral signature many times (a strong anomaly peaks every
//! window that contains it), which makes the endmember matrix singular. As in
//! the morphological endmember-extraction literature the paper builds on
//! (Plaza et al. 2002), we add a greedy spectral-separation test: a candidate
//! is accepted only if its SID to every already-accepted endmember exceeds a
//! threshold.

use crate::cube::Cube;
use crate::error::{HsiError, Result};
use crate::morphology::MeiImage;
use crate::spectral;

/// One selected endmember.
#[derive(Debug, Clone)]
pub struct Endmember {
    /// Spatial location in the image.
    pub x: usize,
    /// Spatial location in the image.
    pub y: usize,
    /// MEI score that ranked this pixel.
    pub score: f32,
    /// The raw (unnormalized) spectral signature.
    pub spectrum: Vec<f32>,
}

/// Configuration for endmember selection.
#[derive(Debug, Clone, Copy)]
pub struct SelectionConfig {
    /// Number of endmembers (classes) to select — the paper's `c`.
    pub count: usize,
    /// Minimum pairwise SID between accepted endmembers.
    pub min_sid: f32,
}

impl Default for SelectionConfig {
    fn default() -> Self {
        Self {
            count: 16,
            min_sid: 1e-4,
        }
    }
}

/// Greedily select up to `config.count` endmembers by descending MEI score,
/// enforcing pairwise spectral separation.
///
/// Returns fewer than `count` endmembers only when the image does not contain
/// that many spectrally distinct high-MEI pixels; at least one endmember is
/// always returned for a non-empty image.
pub fn select_endmembers(
    cube: &Cube,
    mei: &MeiImage,
    config: SelectionConfig,
) -> Result<Vec<Endmember>> {
    let dims = cube.dims();
    if config.count == 0 || config.count > dims.pixels() {
        return Err(HsiError::InvalidClassCount {
            requested: config.count,
            available: dims.pixels(),
        });
    }
    // Rank every pixel by MEI descending (deterministic tie-break).
    let ranked = mei.top_k(mei.scores.len());
    let mut selected: Vec<Endmember> = Vec::with_capacity(config.count);
    let mut selected_norm: Vec<Vec<f32>> = Vec::with_capacity(config.count);
    for (x, y) in ranked {
        if selected.len() == config.count {
            break;
        }
        let spectrum = cube.pixel(x, y);
        let norm = crate::pixel::normalized(&spectrum);
        let distinct = selected_norm
            .iter()
            .all(|e| spectral::sid_normalized(&norm, e) > config.min_sid);
        if distinct {
            selected.push(Endmember {
                x,
                y,
                score: mei.get(x, y),
                spectrum,
            });
            selected_norm.push(norm);
        }
    }
    if selected.is_empty() {
        return Err(HsiError::InvalidClassCount {
            requested: config.count,
            available: 0,
        });
    }
    Ok(selected)
}

/// Borrow the spectra of a selected endmember set as `&[f32]` slices, the
/// form [`crate::unmix::LinearMixtureModel::new`] consumes.
pub fn spectra(endmembers: &[Endmember]) -> Vec<&[f32]> {
    endmembers.iter().map(|e| e.spectrum.as_slice()).collect()
}

/// Residual-driven endmember selection (ATGP, after Chang — the paper's
/// reference \[2\]): seed with the highest-MEI pixel, then repeatedly add the
/// pixel **worst explained** (largest orthogonal-projection residual) by the
/// endmembers selected so far.
///
/// Greedy MEI + pairwise-SID dedup ([`select_endmembers`]) fails on scenes
/// where one strong material boundary produces a *continuum* of mixed
/// spectra: the continuum yields arbitrarily many "distinct" signatures and
/// the selection never leaves that boundary. Residual-driven selection is
/// immune — once both ends of a mixing line are in the set, every point on
/// the line reconstructs exactly and is skipped.
///
/// The projection residuals are maintained *incrementally*: an orthonormal
/// basis of the selected spectra is grown by Gram-Schmidt, and adding one
/// endmember subtracts a single squared dot product per pixel
/// (`r ← r − (q·p)²`) instead of refitting a mixture model and sweeping the
/// image through it. Selecting `c` endmembers therefore costs `O(c·N·bands)`
/// total rather than `O(c²·N·bands)`, with no per-pixel allocation.
pub fn select_endmembers_atgp(cube: &Cube, mei: &MeiImage, count: usize) -> Result<Vec<Endmember>> {
    use rayon::prelude::*;
    let dims = cube.dims();
    if count == 0 || count > dims.pixels() {
        return Err(HsiError::InvalidClassCount {
            requested: count,
            available: dims.pixels(),
        });
    }
    let bip = cube.to_interleave(crate::cube::Interleave::Bip);
    let data = bip.data();
    let bands = dims.bands;
    // r_i starts at ‖p_i‖² (the residual against an empty basis).
    let mut residuals: Vec<f64> = data
        .par_chunks(bands)
        .map(|px| px.iter().map(|&v| (v as f64) * (v as f64)).sum())
        .collect();
    // Stop threshold: a residual this far below the mean pixel energy means
    // the image is already fully explained (degenerate scenes return fewer
    // endmembers than requested instead of duplicating spectra).
    let mean_energy: f64 = residuals.iter().sum::<f64>() / dims.pixels() as f64;
    let stop = mean_energy * 1e-8;

    // Orthonormalize `spectrum` against `basis` and fold it into the pixel
    // residuals. Returns false (leaving both untouched) when the spectrum is
    // linearly dependent on the basis and cannot extend it.
    let mut basis: Vec<Vec<f64>> = Vec::with_capacity(count);
    let extend = |basis: &mut Vec<Vec<f64>>, residuals: &mut [f64], spectrum: &[f32]| {
        let mut v: Vec<f64> = spectrum.iter().map(|&x| x as f64).collect();
        let orig2: f64 = v.iter().map(|x| x * x).sum();
        for q in basis.iter() {
            let proj = crate::linalg::dot_f64(q, &v);
            for (vi, qi) in v.iter_mut().zip(q) {
                *vi -= proj * qi;
            }
        }
        let norm2: f64 = v.iter().map(|x| x * x).sum();
        if norm2 <= orig2 * 1e-24 {
            return false;
        }
        let inv = 1.0 / norm2.sqrt();
        for vi in v.iter_mut() {
            *vi *= inv;
        }
        residuals
            .par_chunks_mut(crate::unmix::BATCH_TILE_PIXELS)
            .zip(data.par_chunks(crate::unmix::BATCH_TILE_PIXELS * bands))
            .for_each(|(rt, pt)| {
                for (r, px) in rt.iter_mut().zip(pt.chunks_exact(bands)) {
                    let d = crate::linalg::dot_f32(&v, px);
                    // Clamp: the subtraction can dip below zero by rounding
                    // once a pixel is fully explained.
                    *r = (*r - d * d).max(0.0);
                }
            });
        basis.push(v);
        true
    };

    let seed = mei.top_k(1)[0];
    let mut selected = vec![Endmember {
        x: seed.0,
        y: seed.1,
        score: mei.get(seed.0, seed.1),
        spectrum: cube.pixel(seed.0, seed.1),
    }];
    extend(&mut basis, &mut residuals, &selected[0].spectrum);
    while selected.len() < count {
        // First index wins ties, matching the stable descending ranking the
        // model-based sweep used.
        let (best, residual) = residuals.iter().copied().enumerate().fold(
            (0usize, f64::NEG_INFINITY),
            |acc, (i, r)| if r > acc.1 { (i, r) } else { acc },
        );
        if residual <= stop {
            break;
        }
        let (x, y) = (best % dims.width, best / dims.width);
        let spectrum = cube.pixel(x, y);
        if !extend(&mut basis, &mut residuals, &spectrum) {
            break;
        }
        selected.push(Endmember {
            x,
            y,
            score: mei.get(x, y),
            spectrum,
        });
    }
    Ok(selected)
}

/// Rank every pixel by unconstrained-LS reconstruction residual under
/// `model`, descending. Used by ATGP selection and by the classifier's
/// starved-cluster reseeding.
///
/// Residuals come from the batched operator kernel
/// ([`crate::unmix::LinearMixtureModel::residuals_batch`]), which runs one
/// tile at a time on per-worker scratch buffers — the former per-pixel
/// `abundances`/`reconstruct` allocations in the parallel map are gone.
pub fn residual_ranking(
    cube: &Cube,
    model: &crate::unmix::LinearMixtureModel,
) -> Vec<(f64, usize, usize)> {
    use rayon::prelude::*;
    let dims = cube.dims();
    let bip = cube.to_interleave(crate::cube::Interleave::Bip);
    let mut residuals = vec![0.0f64; dims.pixels()];
    model
        .residuals_batch(bip.data(), &mut residuals)
        .expect("cube bands match the fitted model");
    let mut ranked: Vec<(f64, usize, usize)> = residuals
        .iter()
        .enumerate()
        .map(|(i, &r)| (r, i % dims.width, i / dims.width))
        .collect();
    ranked.par_sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
    ranked
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cube::{CubeDims, Interleave};
    use crate::morphology::{mei_of_raw, StructuringElement};
    use crate::spectral::SpectralDistance;

    /// 8x8 cube with three materials in vertical strips.
    fn three_material_cube() -> Cube {
        let mats = [
            [100.0f32, 10.0, 10.0, 10.0],
            [10.0f32, 100.0, 10.0, 10.0],
            [10.0f32, 10.0, 100.0, 10.0],
        ];
        Cube::from_fn(CubeDims::new(8, 8, 4), Interleave::Bip, |x, _, b| {
            mats[x * 3 / 8][b]
        })
        .unwrap()
    }

    #[test]
    fn selects_spectrally_distinct_endmembers() {
        let cube = three_material_cube();
        let (mei, _) = mei_of_raw(
            &cube,
            &StructuringElement::square(3).unwrap(),
            SpectralDistance::Sid,
        );
        let ems = select_endmembers(
            &cube,
            &mei,
            SelectionConfig {
                count: 3,
                min_sid: 1e-3,
            },
        )
        .unwrap();
        assert_eq!(ems.len(), 3);
        // Pairwise SIDs all exceed the threshold.
        for i in 0..3 {
            for j in i + 1..3 {
                assert!(spectral::sid(&ems[i].spectrum, &ems[j].spectrum) > 1e-3);
            }
        }
        // Each selected spectrum is dominated by a different band.
        let mut dominant: Vec<usize> = ems
            .iter()
            .map(|e| {
                e.spectrum
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                    .unwrap()
                    .0
            })
            .collect();
        dominant.sort_unstable();
        assert_eq!(dominant, vec![0, 1, 2]);
    }

    #[test]
    fn returns_fewer_when_scene_lacks_diversity() {
        // Constant image: only one distinct signature exists.
        let cube = Cube::from_fn(CubeDims::new(6, 6, 3), Interleave::Bip, |_, _, b| {
            (b + 1) as f32
        })
        .unwrap();
        let (mei, _) = mei_of_raw(
            &cube,
            &StructuringElement::square(3).unwrap(),
            SpectralDistance::Sid,
        );
        let ems = select_endmembers(
            &cube,
            &mei,
            SelectionConfig {
                count: 5,
                min_sid: 1e-4,
            },
        )
        .unwrap();
        assert_eq!(ems.len(), 1);
    }

    #[test]
    fn invalid_counts_rejected() {
        let cube = three_material_cube();
        let (mei, _) = mei_of_raw(
            &cube,
            &StructuringElement::square(3).unwrap(),
            SpectralDistance::Sid,
        );
        assert!(select_endmembers(
            &cube,
            &mei,
            SelectionConfig {
                count: 0,
                min_sid: 0.0
            }
        )
        .is_err());
        assert!(select_endmembers(
            &cube,
            &mei,
            SelectionConfig {
                count: 10_000,
                min_sid: 0.0
            }
        )
        .is_err());
    }

    #[test]
    fn endmember_records_location_and_score() {
        let cube = three_material_cube();
        let (mei, _) = mei_of_raw(
            &cube,
            &StructuringElement::square(3).unwrap(),
            SpectralDistance::Sid,
        );
        let ems = select_endmembers(&cube, &mei, SelectionConfig::default()).unwrap();
        let first = &ems[0];
        assert_eq!(first.score, mei.get(first.x, first.y));
        assert_eq!(first.spectrum, cube.pixel(first.x, first.y));
        // Scores are non-increasing in selection order.
        for w in ems.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn spectra_view_matches() {
        let cube = three_material_cube();
        let (mei, _) = mei_of_raw(
            &cube,
            &StructuringElement::square(3).unwrap(),
            SpectralDistance::Sid,
        );
        let ems = select_endmembers(&cube, &mei, SelectionConfig::default()).unwrap();
        let views = spectra(&ems);
        assert_eq!(views.len(), ems.len());
        assert_eq!(views[0], ems[0].spectrum.as_slice());
    }
}
