//! # `hsi-bench` — the experiment harness
//!
//! Regenerates every table and figure of the paper's evaluation section:
//!
//! | Experiment | Function | Paper artefact |
//! |---|---|---|
//! | GPU platform table | [`format_table1`] | Table 1 |
//! | CPU platform table | [`format_table2`] | Table 2 |
//! | Classification accuracy | [`accuracy_experiment`] + [`format_table3`] | Table 3 |
//! | Execution times (gcc) | [`time_rows`] + [`format_time_table`] | Table 4 |
//! | Execution times (icc) | [`time_rows`] + [`format_time_table`] | Table 5 |
//! | Scene renders | `tables -- fig5` | Fig. 5 |
//! | Performance chart | [`format_fig6`] | Fig. 6 |
//!
//! Run them all with `cargo run --release -p hsi-bench --bin tables -- all`.
//!
//! Execution-time tables report **modeled milliseconds** from counted work
//! (see `amc_core::perf` and `gpu_sim::timing`), plus the paper's published
//! numbers and both sides' derived ratios, so the shape comparison is
//! explicit. Absolute magnitudes are not expected to match (see
//! EXPERIMENTS.md for the documented discrepancy in the paper itself).

#![warn(missing_docs)]

use amc_core::cpu;
use amc_core::perf::{self, PredictConfig};
use gpu_sim::device::{Compiler, CpuProfile, GpuProfile};
use gpu_sim::timing;
use hsi::classify::{AmcClassifier, AmcConfig};
use hsi::metrics::{score_unsupervised, ConfusionMatrix};
use hsi::morphology::StructuringElement;
use hsi_scene::library::{indian_pines_classes, PAPER_OVERALL_ACCURACY};
use hsi_scene::scene::{generate, SceneConfig};

pub mod delta;
pub mod paper;
pub mod results;

/// One labelled feature-table row: name plus a formatter over a profile.
type FeatureRow<'a, P> = (&'a str, Box<dyn Fn(&P) -> String>);

/// One plotted Fig. 6 series: label plus an accessor into a [`TimeRow`].
type SeriesRow = (&'static str, fn(&TimeRow) -> f64);

/// One row of a Table 4/5 reproduction.
#[derive(Debug, Clone)]
pub struct TimeRow {
    /// Scene size label (MB, as in the paper).
    pub size_mb: f64,
    /// Modeled ms: P4 Northwood.
    pub p4_ms: f64,
    /// Modeled ms: Prescott.
    pub prescott_ms: f64,
    /// Modeled ms: FX5950 Ultra (kernel time).
    pub fx5950_ms: f64,
    /// Modeled ms: 7800GTX (kernel time).
    pub gtx7800_ms: f64,
    /// Modeled ms: 7800GTX including host transfers.
    pub gtx7800_total_ms: f64,
}

impl TimeRow {
    /// Speedup of the 7800GTX over the Northwood CPU.
    pub fn speedup_7800_vs_p4(&self) -> f64 {
        self.p4_ms / self.gtx7800_ms
    }

    /// Generation gain FX5950 → 7800GTX.
    pub fn gpu_generation_gain(&self) -> f64 {
        self.fx5950_ms / self.gtx7800_ms
    }
}

/// Compute the modeled execution-time rows for all six paper sizes under
/// the given compiler model (Table 4 = gcc, Table 5 = icc).
pub fn time_rows(compiler: Compiler) -> Vec<TimeRow> {
    let se = StructuringElement::square(3).expect("3x3");
    let cfg = PredictConfig::default();
    let p4 = CpuProfile::pentium4_northwood();
    let prescott = CpuProfile::pentium4_prescott();
    let fx = GpuProfile::fx5950_ultra();
    let g70 = GpuProfile::geforce_7800gtx();
    perf::paper_image_sizes()
        .into_iter()
        .map(|(mb, dims)| {
            let work = cpu::amc_work(dims, se.len());
            let (fx_t, _) =
                perf::predict_gpu_time(dims, &se, &fx, &cfg).expect("paper sizes are chunkable");
            let (g70_t, _) =
                perf::predict_gpu_time(dims, &se, &g70, &cfg).expect("paper sizes are chunkable");
            TimeRow {
                size_mb: mb,
                p4_ms: timing::cpu_time_ms(&work, &p4, compiler),
                prescott_ms: timing::cpu_time_ms(&work, &prescott, compiler),
                fx5950_ms: fx_t.kernel_ms(),
                gtx7800_ms: g70_t.kernel_ms(),
                gtx7800_total_ms: g70_t.total_ms(),
            }
        })
        .collect()
}

/// Result of the Table 3 reproduction.
#[derive(Debug, Clone)]
pub struct AccuracyResult {
    /// Class names in table order.
    pub class_names: Vec<String>,
    /// Paper per-class accuracies.
    pub paper: Vec<f64>,
    /// Measured per-class accuracies on the synthetic scene.
    pub measured: Vec<f64>,
    /// Measured overall accuracy.
    pub overall: f64,
    /// Cohen's kappa.
    pub kappa: f64,
    /// Endmembers actually extracted.
    pub endmembers: usize,
}

impl AccuracyResult {
    /// Pearson correlation between paper and measured per-class accuracies.
    pub fn correlation(&self) -> f64 {
        pearson(&self.paper, &self.measured)
    }
}

/// Pearson correlation of two equal-length samples.
pub fn pearson(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    let n = a.len() as f64;
    let ma = a.iter().sum::<f64>() / n;
    let mb = b.iter().sum::<f64>() / n;
    let cov: f64 = a.iter().zip(b).map(|(x, y)| (x - ma) * (y - mb)).sum();
    let va: f64 = a.iter().map(|x| (x - ma) * (x - ma)).sum();
    let vb: f64 = b.iter().map(|y| (y - mb) * (y - mb)).sum();
    if va <= 0.0 || vb <= 0.0 {
        return 0.0;
    }
    cov / (va.sqrt() * vb.sqrt())
}

/// Run the full AMC classification experiment (Table 3) on the reduced
/// synthetic Indian Pines scene.
pub fn accuracy_experiment(seed: u64) -> AccuracyResult {
    accuracy_experiment_with(&SceneConfig::reduced_indian_pines(seed))
}

/// [`accuracy_experiment`] with a custom scene configuration (used by tests
/// with smaller scenes; the scene seed lives in the config).
pub fn accuracy_experiment_with(config: &SceneConfig) -> AccuracyResult {
    let classes = indian_pines_classes();
    let scene = generate(&classes, config);
    let amc = AmcClassifier::new(AmcConfig::paper_default(classes.len()));
    let out = amc.classify(&scene.cube).expect("AMC run");
    let cm: ConfusionMatrix = score_unsupervised(
        &scene.ground_truth,
        &out.labels,
        out.class_count(),
        classes.len(),
    )
    .expect("scoring");
    AccuracyResult {
        class_names: scene.class_names.clone(),
        paper: classes.iter().map(|c| c.paper_accuracy).collect(),
        measured: cm.per_class_accuracy(),
        overall: cm.overall_accuracy(),
        kappa: cm.kappa(),
        endmembers: out.class_count(),
    }
}

/// Format a Table 1 (GPU features) reproduction.
pub fn format_table1() -> String {
    let gpus = GpuProfile::paper_gpus();
    let mut s = String::from("Table 1. Experimental GPU's Features\n");
    let rows: Vec<FeatureRow<GpuProfile>> = vec![
        ("Year", Box::new(|g: &GpuProfile| g.year.to_string())),
        ("Architecture", Box::new(|g| g.architecture.to_string())),
        ("Bus", Box::new(|g| format!("{:?}", g.bus.kind))),
        (
            "Video Memory",
            Box::new(|g| format!("{}MB", g.video_memory_mib)),
        ),
        (
            "Core Clock",
            Box::new(|g| format!("{} MHz", g.core_clock_mhz)),
        ),
        (
            "Memory Clock",
            Box::new(|g| format!("{} MHz", g.memory_clock_mhz)),
        ),
        (
            "Memory Interface",
            Box::new(|g| format!("{}-bit", g.memory_bus_bits)),
        ),
        (
            "Memory bandwidth",
            Box::new(|g| format!("{} GB/s", g.memory_bandwidth_gbs)),
        ),
        (
            "#Pixel shader processors",
            Box::new(|g| g.fragment_pipes.to_string()),
        ),
        (
            "Texture fill rate",
            Box::new(|g| format!("{} MTexels/s", g.texture_fill_mtexels)),
        ),
    ];
    s.push_str(&format!(
        "{:<26} {:<22} {:<22}\n",
        "Feature", gpus[0].name, gpus[1].name
    ));
    for (label, f) in rows {
        s.push_str(&format!(
            "{:<26} {:<22} {:<22}\n",
            label,
            f(&gpus[0]),
            f(&gpus[1])
        ));
    }
    s
}

/// Format a Table 2 (CPU features) reproduction.
pub fn format_table2() -> String {
    let cpus = CpuProfile::paper_cpus();
    let mut s = String::from("Table 2. Experimental CPU's Features\n");
    s.push_str(&format!(
        "{:<12} {:<28} {:<22}\n",
        "Feature", cpus[0].name, cpus[1].name
    ));
    let rows: Vec<FeatureRow<CpuProfile>> = vec![
        ("Year", Box::new(|c: &CpuProfile| c.year.to_string())),
        ("FSB", Box::new(|c| format!("800 MHz, {} GB/s", c.fsb_gbs))),
        ("L2 Cache", Box::new(|c| format!("{}KB", c.l2_kib))),
        ("Memory", Box::new(|c| format!("{}GB", c.memory_mib / 1024))),
        (
            "Clock",
            Box::new(|c| format!("{} GHz", c.clock_mhz / 1000.0)),
        ),
    ];
    for (label, f) in rows {
        s.push_str(&format!(
            "{:<12} {:<28} {:<22}\n",
            label,
            f(&cpus[0]),
            f(&cpus[1])
        ));
    }
    s
}

/// Format the Table 3 reproduction, paper vs measured.
pub fn format_table3(result: &AccuracyResult) -> String {
    let mut s = String::from(
        "Table 3. Classification accuracy for each ground-truth class\n\
         (synthetic Indian Pines analogue; paper values alongside)\n\n",
    );
    s.push_str(&format!(
        "{:<30} {:>10} {:>10}\n",
        "Class", "Paper (%)", "Measured (%)"
    ));
    for i in 0..result.class_names.len() {
        s.push_str(&format!(
            "{:<30} {:>10.2} {:>10.2}\n",
            result.class_names[i], result.paper[i], result.measured[i]
        ));
    }
    s.push_str(&format!(
        "{:<30} {:>10.2} {:>10.2}\n",
        "Overall:", PAPER_OVERALL_ACCURACY, result.overall
    ));
    s.push_str(&format!(
        "\nkappa = {:.3}, endmembers extracted = {}, per-class correlation with paper = {:.3}\n",
        result.kappa,
        result.endmembers,
        result.correlation()
    ));
    s
}

/// Format a Table 4/5 reproduction with the paper's numbers and the ratio
/// structure.
pub fn format_time_table(compiler: Compiler, rows: &[TimeRow]) -> String {
    let (title, paper_rows) = match compiler {
        Compiler::Gcc => ("Table 4 (gcc)", paper::TABLE4),
        Compiler::Icc => ("Table 5 (icc)", paper::TABLE5),
    };
    let mut s = format!(
        "{title}. Execution time (ms) for the CPU and GPU implementations\n\
         (modeled from counted work on the published Table 1/2 parameters)\n\n"
    );
    s.push_str(&format!(
        "{:>8} | {:>10} {:>10} {:>10} {:>10} | {:>12} {:>10}\n",
        "Size MB", "P4", "Prescott", "FX5950U", "7800GTX", "7800+xfer", "speedup"
    ));
    for r in rows {
        s.push_str(&format!(
            "{:>8.0} | {:>10.1} {:>10.1} {:>10.2} {:>10.2} | {:>12.2} {:>9.1}x\n",
            r.size_mb,
            r.p4_ms,
            r.prescott_ms,
            r.fx5950_ms,
            r.gtx7800_ms,
            r.gtx7800_total_ms,
            r.speedup_7800_vs_p4(),
        ));
    }
    s.push_str("\nPaper's published values (ms):\n");
    s.push_str(&format!(
        "{:>8} | {:>10} {:>10} {:>10} {:>10} | {:>10}\n",
        "Size MB", "P4", "Prescott", "FX5950U", "7800GTX", "speedup"
    ));
    for p in paper_rows {
        s.push_str(&format!(
            "{:>8.0} | {:>10.1} {:>10.1} {:>10.2} {:>10.2} | {:>9.1}x\n",
            p[0],
            p[1],
            p[2],
            p[3],
            p[4],
            p[1] / p[4],
        ));
    }
    s
}

/// Format the Fig. 6 data: every platform's modeled time as CSV series plus
/// an ASCII log-scale chart.
pub fn format_fig6(rows: &[TimeRow]) -> String {
    let mut s = String::from(
        "Figure 6. Performance of the CPU and GPU implementations (gcc build)\n\
         CSV series (size_mb, p4_ms, prescott_ms, fx5950_ms, gtx7800_ms):\n",
    );
    for r in rows {
        s.push_str(&format!(
            "{:.0},{:.3},{:.3},{:.3},{:.3}\n",
            r.size_mb, r.p4_ms, r.prescott_ms, r.fx5950_ms, r.gtx7800_ms
        ));
    }
    s.push_str("\nlog10(ms) per platform (each column one size, '#' = value):\n");
    let series: [SeriesRow; 4] = [
        ("P4      ", |r| r.p4_ms),
        ("Prescott", |r| r.prescott_ms),
        ("FX5950U ", |r| r.fx5950_ms),
        ("7800GTX ", |r| r.gtx7800_ms),
    ];
    for (name, f) in series {
        s.push_str(&format!("{name} |"));
        for r in rows {
            let v = f(r).log10();
            let stars = ((v + 1.0) * 8.0).round().max(1.0) as usize;
            s.push_str(&format!(" {:<38}", "#".repeat(stars.min(38))));
        }
        s.push('\n');
    }
    s
}

/// Format the modeled ablation report: structuring-element size, texture
/// cache on/off, and chunk granularity, all on the full 547 MB scene.
pub fn format_ablations() -> String {
    use hsi::cube::{Chunking, CubeDims};
    let dims = CubeDims::new(2166, 614, 216);
    let g70 = GpuProfile::geforce_7800gtx();
    let mut s = String::from("Ablations (modeled, full 547 MB scene, GeForce 7800GTX)\n\n");

    // 1. Structuring-element size: O(p_f * p_B * N).
    s.push_str("SE size sweep (kernel ms; complexity is linear in p_B):\n");
    for side in [3usize, 5, 7] {
        let se = StructuringElement::square(side).expect("odd side");
        let (t, _) = perf::predict_gpu_time(dims, &se, &g70, &PredictConfig::default())
            .expect("full scene is chunkable");
        s.push_str(&format!(
            "  {side}x{side} (p_B = {:>2}): {:>8.1} ms\n",
            se.len(),
            t.kernel_ms()
        ));
    }

    // 2. Texture-cache model on/off: memory-side roofline impact.
    let se = StructuringElement::square(3).expect("3x3");
    s.push_str("\nTexture cache (memory-side time of the roofline):\n");
    for (name, cfg) in [
        ("hit rate 0.94 (modeled cache)", PredictConfig::default()),
        (
            "no cache (every fetch to DRAM)",
            PredictConfig {
                cache_hit_rate: 0.0,
                include_transfers: true,
            },
        ),
    ] {
        let (t, _) =
            perf::predict_gpu_time(dims, &se, &g70, &cfg).expect("full scene is chunkable");
        s.push_str(&format!(
            "  {name:<32} memory {:>8.1} ms, kernel {:>8.1} ms\n",
            t.memory_s * 1e3,
            t.kernel_ms()
        ));
    }

    // 3. Chunk granularity: halo recomputation overhead.
    s.push_str("\nChunk granularity (halo = 2 lines; instruction overhead vs unchunked):\n");
    let whole = perf::predict_stats(dims, &se, Chunking::new(614, 2), &PredictConfig::default());
    for lines in [8usize, 32, 128, 614] {
        let c = perf::predict_stats(
            dims,
            &se,
            Chunking::new(lines, 2),
            &PredictConfig::default(),
        );
        s.push_str(&format!(
            "  {lines:>4} lines/chunk: {:>5.1}% extra shader work\n",
            (c.instructions as f64 / whole.instructions as f64 - 1.0) * 100.0
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_rows_reproduce_paper_shape() {
        let gcc = time_rows(Compiler::Gcc);
        assert_eq!(gcc.len(), 6);
        // Linear scaling: the largest scene is ~8x the smallest.
        let ratio = gcc[5].p4_ms / gcc[0].p4_ms;
        assert!((ratio - 8.0).abs() < 0.3, "cpu scaling {ratio}");
        let ratio = gcc[5].gtx7800_ms / gcc[0].gtx7800_ms;
        assert!((ratio - 8.0).abs() < 0.8, "gpu scaling {ratio}");
        // GPU generation gain in the paper's 4.4x band.
        for r in &gcc {
            let g = r.gpu_generation_gain();
            assert!(g > 3.0 && g < 7.0, "generation gain {g}");
        }
        // Prescott under 10% faster than Northwood.
        for r in &gcc {
            let g = r.p4_ms / r.prescott_ms;
            assert!(g > 1.0 && g < 1.1, "prescott gain {g}");
        }
        // icc beats gcc by the paper's 1.6–1.9x.
        let icc = time_rows(Compiler::Icc);
        for (a, b) in gcc.iter().zip(&icc) {
            let g = a.p4_ms / b.p4_ms;
            assert!(g > 1.5 && g < 2.0, "icc gain {g}");
        }
        // GPU >> CPU throughout.
        for r in &gcc {
            assert!(r.speedup_7800_vs_p4() > 10.0);
        }
    }

    #[test]
    fn formatters_produce_full_tables() {
        let t1 = format_table1();
        assert!(t1.contains("GeForce 7800GTX"));
        assert!(t1.contains("475 MHz"));
        let t2 = format_table2();
        assert!(t2.contains("Prescott"));
        assert!(t2.contains("2.8 GHz"));
        let rows = time_rows(Compiler::Gcc);
        let t4 = format_time_table(Compiler::Gcc, &rows);
        assert!(t4.contains("Table 4"));
        assert!(t4.contains("Paper's published values"));
        assert!(t4.contains("91.7")); // paper P4 value, first row
        let f6 = format_fig6(&rows);
        assert!(f6.contains("Figure 6"));
        assert!(f6.lines().count() > 10);
    }

    #[test]
    fn ablation_report_shapes() {
        let r = format_ablations();
        assert!(r.contains("SE size sweep"));
        assert!(r.contains("7x7"));
        assert!(r.contains("Chunk granularity"));
        // SE cost grows with p_B; parse the three kernel times.
        let times: Vec<f64> = r
            .lines()
            .filter(|l| l.contains("p_B ="))
            .map(|l| {
                l.split(':')
                    .nth(1)
                    .unwrap()
                    .trim()
                    .trim_end_matches(" ms")
                    .parse()
                    .unwrap()
            })
            .collect();
        assert_eq!(times.len(), 3);
        assert!(times[0] < times[1] && times[1] < times[2], "{times:?}");
    }

    #[test]
    fn pearson_basics() {
        assert!((pearson(&[1.0, 2.0, 3.0], &[2.0, 4.0, 6.0]) - 1.0).abs() < 1e-12);
        assert!((pearson(&[1.0, 2.0, 3.0], &[3.0, 2.0, 1.0]) + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&[1.0, 1.0], &[2.0, 3.0]), 0.0);
    }

    #[test]
    fn small_scene_accuracy_experiment_runs() {
        // A fast configuration: fewer pixels and bands than the full
        // experiment but the same machinery end to end.
        let mut cfg = SceneConfig::reduced_indian_pines(7);
        cfg.width = 96;
        cfg.height = 64;
        cfg.bands = 32;
        cfg.field_width = 12;
        cfg.field_height = 12;
        let r = accuracy_experiment_with(&cfg);
        assert_eq!(r.class_names.len(), 32);
        assert!(r.endmembers > 16, "found {}", r.endmembers);
        assert!(r.overall > 40.0, "overall {}", r.overall);
        assert_eq!(r.measured.len(), 32);
    }
}
