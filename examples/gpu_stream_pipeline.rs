//! Drive the simulated GPU directly: run the six-stage stream AMC pipeline
//! (Fig. 4) in both kernel modes on both of the paper's GPUs, compare the
//! streams bit-for-bit, and print counted work plus modeled execution times.
//!
//! ```text
//! cargo run --release --example gpu_stream_pipeline
//! ```

use hyperspec::amc::pipeline::{GpuAmc, KernelMode};
use hyperspec::gpu::timing;
use hyperspec::prelude::*;

fn main() {
    // A deterministic pseudo-random cube: 64x48 pixels, 16 bands.
    let dims = CubeDims::new(64, 48, 16);
    let mut state = 0x0123_4567_89AB_CDEF_u64 | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 40) as f32 / 16_777_216.0
    };
    let cube =
        Cube::from_fn(dims, Interleave::Bip, |_, _, _| 40.0 + 200.0 * next()).expect("valid dims");

    let se = StructuringElement::square(3).expect("3x3");
    for profile in [GpuProfile::fx5950_ultra(), GpuProfile::geforce_7800gtx()] {
        println!("=== {} ===", profile.name);
        let mut gpu = Gpu::new(profile.clone());

        // Closure kernels (fast path).
        let closure = GpuAmc::new(se.clone(), KernelMode::Closure)
            .run(&mut gpu, &cube)
            .expect("closure pipeline");
        // ISA kernels (assembled fp30-style programs through the interpreter).
        let isa_amc = GpuAmc::new(se.clone(), KernelMode::Isa);
        let fused = isa_amc.fusion();
        let isa = isa_amc.run(&mut gpu, &cube).expect("ISA pipeline");
        assert_eq!(
            closure.mei.scores, isa.mei.scores,
            "both kernel forms produce bit-identical MEI streams"
        );
        // Closure arms count the optimized per-fragment costs of the
        // unfused schedule; the counters only line up when the optimizer
        // is on (`GPU_SIM_OPT=0` shades the raw, longer programs) and
        // fusion is off (the fused graph trades texel fetches for inlined
        // recompute, so it runs fewer passes and fetches but more
        // instructions). The MEI bit-identity above holds on every axis.
        if fused {
            assert!(isa.stats.passes < closure.stats.passes);
            assert!(isa.stats.texel_fetches < closure.stats.texel_fetches);
        } else if gpu.optimizer_enabled() {
            assert_eq!(closure.stats.instructions, isa.stats.instructions);
        } else {
            assert!(closure.stats.instructions < isa.stats.instructions);
        }

        let s = &closure.stats;
        println!(
            "passes: {}, fragments: {}, SIMD4 instructions: {}, texel fetches: {}",
            s.passes, s.fragments, s.instructions, s.texel_fetches
        );
        println!(
            "instructions/fragment: {:.1}, texture cache hit rate: {:.1}%",
            s.instructions_per_fragment(),
            100.0 * s.cache_hit_rate()
        );
        println!(
            "host -> device: {} KiB, device -> host: {} KiB",
            s.bytes_uploaded / 1024,
            s.bytes_downloaded / 1024
        );
        let t = timing::gpu_time(s, &gpu.profile().clone());
        println!(
            "modeled time: compute {:.3} ms, texture {:.3} ms, memory {:.3} ms",
            t.compute_s * 1e3,
            t.texture_s * 1e3,
            t.memory_s * 1e3
        );
        println!(
            "kernel {:.3} ms + transfers {:.3} ms = {:.3} ms total\n",
            t.kernel_ms(),
            (t.upload_s + t.download_s) * 1e3,
            t.total_ms()
        );
    }

    println!("ISA and closure kernels agreed bit-for-bit on both devices.");
}
