//! Offline stand-in for [rand_chacha](https://crates.io/crates/rand_chacha).
//!
//! Exposes [`ChaCha8Rng`] with the `SeedableRng::seed_from_u64` constructor
//! the workspace uses. The implementation is **xoshiro256++** seeded through
//! SplitMix64 — statistically solid and fully deterministic per seed, but
//! *not* bit-compatible with the real ChaCha stream cipher. Everything in
//! this workspace that consumes it (synthetic scene generation, tests) only
//! relies on determinism and uniformity, both of which hold.

use rand::{RngCore, SeedableRng};

/// Deterministic seedable generator (xoshiro256++ core).
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    state: [u64; 4],
}

impl ChaCha8Rng {
    fn from_splitmix(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = move || {
            sm = sm.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        Self {
            state: [next(), next(), next(), next()],
        }
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        Self::from_splitmix(seed)
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s = [s0, s1, s2, s3];
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        self.state = s;
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn drives_the_rng_trait() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut counts = [0u32; 4];
        for _ in 0..4000 {
            counts[rng.gen_range(0usize..4)] += 1;
        }
        // Roughly uniform: every bucket within 3x of the expected 1000.
        assert!(counts.iter().all(|&c| c > 333 && c < 3000), "{counts:?}");
    }
}
