//! Host ↔ device bus model (the paper's stream upload/download stages).
//!
//! The FX5950 Ultra sits on AGP 8x, the 7800GTX on PCI Express x16 — the bus
//! generation is one of the two headline differences between the paper's GPU
//! platforms. Transfer time is modeled as fixed per-transfer latency plus
//! bytes over effective bandwidth.

/// Bus generations used by the paper's platforms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BusKind {
    /// AGP 8x: 2.1 GB/s peak towards the device, readbacks much slower.
    Agp8x,
    /// PCI Express x16 (Gen 1): 4 GB/s each direction.
    PciExpress16,
}

/// Bus transfer model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BusModel {
    /// Bus generation.
    pub kind: BusKind,
    /// Host → device effective bandwidth, bytes/second.
    pub upload_bps: f64,
    /// Device → host effective bandwidth, bytes/second.
    pub download_bps: f64,
    /// Fixed per-transfer setup latency, seconds.
    pub latency_s: f64,
}

impl BusModel {
    /// AGP 8x as on the FX5950 Ultra. AGP readback was notoriously slow
    /// (~250 MB/s), a real asymmetry GPGPU work of the era had to design
    /// around.
    pub const fn agp8x() -> Self {
        Self {
            kind: BusKind::Agp8x,
            upload_bps: 2.1e9,
            download_bps: 0.25e9,
            latency_s: 20e-6,
        }
    }

    /// PCI Express x16 Gen 1 as on the 7800GTX.
    pub const fn pcie16() -> Self {
        Self {
            kind: BusKind::PciExpress16,
            upload_bps: 4.0e9,
            download_bps: 3.0e9,
            latency_s: 10e-6,
        }
    }

    /// Seconds to upload `bytes` host → device.
    pub fn upload_time(&self, bytes: usize) -> f64 {
        self.latency_s + bytes as f64 / self.upload_bps
    }

    /// Seconds to download `bytes` device → host.
    pub fn download_time(&self, bytes: usize) -> f64 {
        self.latency_s + bytes as f64 / self.download_bps
    }

    /// The same bus as seen by one of `sharers` devices streaming
    /// concurrently over the shared host link: bandwidth divides evenly
    /// across the sharers while the per-transfer setup latency stays fixed
    /// (each device still issues its own transfers). `sharers` below 2
    /// returns the uncontended model.
    pub fn contended(&self, sharers: usize) -> Self {
        let n = sharers.max(1) as f64;
        Self {
            kind: self.kind,
            upload_bps: self.upload_bps / n,
            download_bps: self.download_bps / n,
            latency_s: self.latency_s,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pcie_uploads_faster_than_agp() {
        let agp = BusModel::agp8x();
        let pcie = BusModel::pcie16();
        let mb = 1 << 20;
        assert!(pcie.upload_time(64 * mb) < agp.upload_time(64 * mb));
        // AGP readback asymmetry.
        assert!(agp.download_time(mb) > agp.upload_time(mb));
    }

    #[test]
    fn transfer_time_scales_linearly() {
        let bus = BusModel::pcie16();
        let t1 = bus.upload_time(1_000_000) - bus.latency_s;
        let t2 = bus.upload_time(2_000_000) - bus.latency_s;
        assert!((t2 / t1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn zero_bytes_costs_only_latency() {
        let bus = BusModel::agp8x();
        assert_eq!(bus.upload_time(0), bus.latency_s);
        assert_eq!(bus.download_time(0), bus.latency_s);
    }

    #[test]
    fn contention_divides_bandwidth_not_latency() {
        let bus = BusModel::pcie16();
        let shared = bus.contended(2);
        assert_eq!(shared.upload_bps, bus.upload_bps / 2.0);
        assert_eq!(shared.download_bps, bus.download_bps / 2.0);
        assert_eq!(shared.latency_s, bus.latency_s);
        assert_eq!(shared.kind, bus.kind);
        // Transfer of the same bytes takes twice as long minus the fixed
        // latency share.
        let mb = 1 << 20;
        let solo = bus.upload_time(64 * mb) - bus.latency_s;
        let dual = shared.upload_time(64 * mb) - shared.latency_s;
        assert!((dual / solo - 2.0).abs() < 1e-9);
        // Degenerate sharer counts are the uncontended bus.
        assert_eq!(bus.contended(0), bus);
        assert_eq!(bus.contended(1), bus);
    }
}
