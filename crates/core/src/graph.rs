//! A declarative render graph with a compiling executor.
//!
//! The AMC pipeline is a fixed chain of fragment passes; instead of
//! hand-wiring texture ping-pongs, the pipeline *declares* every pass —
//! which textures it reads (in sampler order), which coordinate sets and
//! pass constants it binds, and the single texture it writes — against
//! SSA-style logical texture handles (each written by at most one pass).
//! [`compile`] then:
//!
//! 1. **validates** the graph (single writer, producers precede consumers,
//!    per-pass program verification) by lowering it to the
//!    [`gpu_sim::opt::check_pipeline`] contract form;
//! 2. runs **dead-pass elimination** — passes that cannot reach a declared
//!    [`TexKind::Output`] are dropped and reported;
//! 3. optionally **fuses producer→consumer pass pairs** by inlining the
//!    producer's fp30 body at the consumer's `TEX` site
//!    ([`gpu_sim::opt::inline_producer`]), re-optimizing and re-verifying
//!    every fused program;
//! 4. runs **texture lifetime analysis** and assigns transient textures to
//!    size-classed physical slots so that two textures share a slot only
//!    when their live ranges are disjoint — the executor realizes the
//!    aliasing through the device's LIFO texture pool.
//!
//! [`CompiledGraph::execute`] walks the scheduled passes against a
//! [`Gpu`], materializing transient textures on first use (skipping the
//! pool's zero-fill when the producer provably overwrites every texel),
//! releasing them after their last read, and bucketing pass statistics and
//! wall time per declared stage.
//!
//! # Fusion soundness
//!
//! Fusion decisions are made in two phases, both all-or-nothing per
//! producer and both falling back to the materialized two-pass form on any
//! resource limit or legality failure:
//!
//! * **Phase A — field producers.** A transient read by ≥ 2 passes *at
//!   diverse coordinates* (shifted sets or dependent reads — i.e. consumed
//!   as a field, not forwarded along an accumulator) is inlined at every
//!   reading site with [`InlineMode::SubstituteSiteCoord`], which is exact
//!   because the producer rendered with identity coordinate sets: its texel
//!   is a pure function of position, so recomputing the body at the site's
//!   coordinate reproduces the fetch. Candidates are chosen on the declared
//!   graph only — coordinate diversity *introduced* by substitution is an
//!   artifact of inlining, so one round suffices and accumulator chains
//!   stay materialized for phase B.
//! * **Phase B — accumulator chains.** A transient with exactly one reader
//!   is collapsed into it (forward sweep; a collapsed pass immediately
//!   becomes the next candidate, so chains fold until a register, sampler,
//!   coordinate-set, or program-length limit stops them — the limit point
//!   is where the chain segments). The producer's coordinate sets either
//!   are all identity (site substitution again) or are carried into the
//!   fused pass bit-identically with the reading site pinned at identity
//!   ([`InlineMode::KeepProducerCoords`]).
//!
//! Every fused program is rebuilt by the exact-preserving `opt` framework
//! (CSE, per-lane DCE, temp compaction) and statically re-verified against
//! the device profile, so the fused graph renders bit-identically to the
//! unfused one — which stays available behind `GPU_SIM_FUSE=0` as the
//! oracle.

use gpu_sim::counters::PassStats;
use gpu_sim::device::GpuProfile;
use gpu_sim::gpu::{Gpu, TextureId};
use gpu_sim::isa::{Opcode, Program, Reg, NUM_SAMPLERS, NUM_TEXCOORDS};
use gpu_sim::opt::{self, InlineMode, InlineRequest};
use gpu_sim::raster::TexCoordSet;
use gpu_sim::texture::AddressMode;
use gpu_sim::verify::PassBindings;
use gpu_sim::GpuError;
use std::fmt;
use std::fmt::Write as _;
use std::time::Instant;

/// Handle to one logical texture in a [`RenderGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TexHandle(pub usize);

/// What a logical texture is to the graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TexKind {
    /// Supplied by the caller at execute time (e.g. uploaded band planes).
    /// Never allocated or released by the executor.
    Imported,
    /// Produced and consumed inside one execution; eligible for slot
    /// aliasing. `zeroed` textures have no producer pass — they
    /// materialize zero-filled at first read (accumulator seeds).
    Transient {
        /// Reads observe all-zero texels until (never) written.
        zeroed: bool,
    },
    /// Survives the execution; returned to the caller for download.
    Output,
}

/// One logical texture declaration.
#[derive(Debug, Clone)]
pub struct TextureDecl {
    /// Debug name (unique; doubles as the contract resource name).
    pub name: String,
    /// Width in texels.
    pub width: usize,
    /// Height in texels.
    pub height: usize,
    /// Role of the texture.
    pub kind: TexKind,
}

/// One declared render pass.
#[derive(Debug, Clone)]
pub struct PassDecl {
    /// Debug name (unique per pass instance).
    pub name: String,
    /// Pipeline stage tag; consecutive passes with the same tag share a
    /// `pipeline.stage` trace span and a [`StageRun`] stats bucket.
    pub stage: &'static str,
    /// The fp30 program the pass shades with.
    pub program: Program,
    /// Sampler bindings in order: the texture and the address mode the
    /// program's fetch pattern requires of it (if any).
    pub inputs: Vec<(TexHandle, Option<AddressMode>)>,
    /// Interpolated coordinate sets, in `T` register order.
    pub texcoords: Vec<TexCoordSet>,
    /// Pass-bound constants overriding program `DEF`s.
    pub constants: Vec<(u8, [f32; 4])>,
    /// The texture rendered into (full-target quad).
    pub output: TexHandle,
}

/// A declarative pass graph; build with [`RenderGraph::texture`] and
/// [`RenderGraph::add_pass`], then [`compile`].
#[derive(Debug, Clone, Default)]
pub struct RenderGraph {
    /// Logical textures, indexed by [`TexHandle`].
    pub textures: Vec<TextureDecl>,
    /// Passes in submission order (producers before consumers).
    pub passes: Vec<PassDecl>,
}

impl RenderGraph {
    /// Empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declare a logical texture and return its handle.
    pub fn texture(
        &mut self,
        name: impl Into<String>,
        w: usize,
        h: usize,
        kind: TexKind,
    ) -> TexHandle {
        self.textures.push(TextureDecl {
            name: name.into(),
            width: w,
            height: h,
            kind,
        });
        TexHandle(self.textures.len() - 1)
    }

    /// Append a pass.
    pub fn add_pass(&mut self, pass: PassDecl) {
        self.passes.push(pass);
    }

    /// Validate the graph's shape against a device profile. Empty means
    /// accepted. Graph-specific checks (handle bounds, imported textures
    /// never written, non-zeroed transients produced before read) run
    /// first; the rest lowers to [`opt::check_pipeline`], which verifies
    /// every pass program under its exact bindings and enforces the
    /// single-writer and producer-before-consumer contract per resource.
    pub fn validate(&self, profile: &GpuProfile) -> Vec<String> {
        let mut errors = Vec::new();
        let n = self.textures.len();
        for (i, t) in self.textures.iter().enumerate() {
            if self.textures[..i].iter().any(|o| o.name == t.name) {
                errors.push(format!("texture `{}` declared twice", t.name));
            }
        }
        let mut produced = vec![false; n];
        for p in &self.passes {
            for &(h, _) in &p.inputs {
                if h.0 >= n {
                    errors.push(format!(
                        "pass `{}`: input handle {} out of range",
                        p.name, h.0
                    ));
                }
            }
            if p.output.0 >= n {
                errors.push(format!(
                    "pass `{}`: output handle {} out of range",
                    p.name, p.output.0
                ));
                continue;
            }
            match self.textures[p.output.0].kind {
                TexKind::Imported => errors.push(format!(
                    "pass `{}`: renders into imported texture `{}`",
                    p.name, self.textures[p.output.0].name
                )),
                TexKind::Transient { zeroed: true } => errors.push(format!(
                    "pass `{}`: renders into zero-seeded texture `{}` (seeds have no producer)",
                    p.name, self.textures[p.output.0].name
                )),
                _ => {}
            }
            for &(h, _) in &p.inputs {
                if h.0 >= n {
                    continue;
                }
                let needs_producer = matches!(
                    self.textures[h.0].kind,
                    TexKind::Transient { zeroed: false } | TexKind::Output
                );
                if needs_producer && !produced[h.0] {
                    errors.push(format!(
                        "pass `{}`: reads `{}` before any pass produces it",
                        p.name, self.textures[h.0].name
                    ));
                }
            }
            produced[p.output.0] = true;
        }
        for (i, t) in self.textures.iter().enumerate() {
            if matches!(t.kind, TexKind::Output) && !produced[i] {
                errors.push(format!("output texture `{}` is never produced", t.name));
            }
        }
        if !errors.is_empty() {
            return errors;
        }
        let (resources, stages) = self.to_contracts();
        errors.extend(opt::check_pipeline(profile, &resources, &stages));
        errors
    }

    /// Lower the graph to the [`opt::check_pipeline`] contract form: one
    /// resource per logical texture (the pool configures every texture
    /// `ClampToEdge`), one stage per pass.
    fn to_contracts(&self) -> (Vec<opt::ResourceDecl>, Vec<opt::StageContract>) {
        let resources = self
            .textures
            .iter()
            .map(|t| opt::ResourceDecl {
                name: t.name.clone(),
                mode: AddressMode::ClampToEdge,
            })
            .collect();
        let stages = self
            .passes
            .iter()
            .map(|p| opt::StageContract {
                name: p.name.clone(),
                program: p.program.clone(),
                bindings: pass_bindings(p.inputs.len(), p.texcoords.len(), &p.constants),
                inputs: p
                    .inputs
                    .iter()
                    .map(|&(h, m)| (self.textures[h.0].name.clone(), m))
                    .collect(),
                output: self.textures[p.output.0].name.clone(),
            })
            .collect();
        (resources, stages)
    }
}

fn pass_bindings(
    samplers: usize,
    texcoord_sets: usize,
    constants: &[(u8, [f32; 4])],
) -> PassBindings {
    PassBindings {
        samplers,
        texcoord_sets,
        constants: constants.iter().map(|&(i, _)| i).collect(),
        // The executor resolves only O0 to the render target.
        outputs_read: [true, false, false, false],
    }
}

/// Graph compilation failure: the accumulated validation errors.
#[derive(Debug)]
pub struct CompileError {
    /// Human-readable diagnostics.
    pub errors: Vec<String>,
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "render graph rejected: {}", self.errors.join("; "))
    }
}

impl std::error::Error for CompileError {}

/// One committed producer→consumer inline, for attribution.
#[derive(Debug, Clone)]
pub struct FusionRecord {
    /// Name of the producer pass whose body was inlined.
    pub producer: String,
    /// Name of the consuming pass that absorbed it.
    pub consumer: String,
    /// `(producer, consumer)` kernel (program) names.
    pub kernels: (String, String),
    /// Coordinate reconciliation used.
    pub mode: InlineMode,
    /// `TEX` sites replaced in the consumer.
    pub sites: usize,
    /// Per-fragment texel fetches of producer + consumer before fusing.
    pub fetches_before: usize,
    /// Per-fragment texel fetches of the fused program.
    pub fetches_after: usize,
}

/// One scheduled pass of a [`CompiledGraph`].
#[derive(Debug, Clone)]
pub struct CompiledPass {
    /// Pass name (the consumer's name survives fusion).
    pub name: String,
    /// Stage tag for span/stats grouping.
    pub stage: &'static str,
    /// Program to shade (fused passes carry the rebuilt program).
    pub program: Program,
    /// Sampler bindings in order.
    pub inputs: Vec<TexHandle>,
    /// Coordinate sets in `T` register order.
    pub texcoords: Vec<TexCoordSet>,
    /// Pass-bound constants.
    pub constants: Vec<(u8, [f32; 4])>,
    /// Render target.
    pub output: TexHandle,
}

/// Compile-time facts about one logical texture.
#[derive(Debug, Clone)]
pub struct TextureMeta {
    /// Physical slot index (`None` for imported textures and textures fused
    /// entirely out of existence).
    pub slot: Option<usize>,
    /// Pass index producing it (`None` for imports and zero seeds).
    pub producer: Option<usize>,
    /// Last pass index reading it.
    pub last_use: Option<usize>,
    /// The producer provably overwrites every texel before any read, so a
    /// pooled reuse may skip the zero fill.
    pub uninit_ok: bool,
}

/// A compiled, executable render graph.
#[derive(Debug, Clone)]
pub struct CompiledGraph {
    /// Logical texture declarations (indexed by [`TexHandle`]).
    pub textures: Vec<TextureDecl>,
    /// Per-texture compile results, parallel to `textures`.
    pub meta: Vec<TextureMeta>,
    /// `(width, height)` of each physical slot.
    pub slots: Vec<(usize, usize)>,
    /// Scheduled passes.
    pub passes: Vec<CompiledPass>,
    /// Committed fusions, in commit order.
    pub fusions: Vec<FusionRecord>,
    /// Names of dead passes removed by dead-pass elimination.
    pub eliminated: Vec<String>,
    /// Whether fusion ran.
    pub fused: bool,
    /// Transient handles to release after each pass (last-use lists).
    release_after: Vec<Vec<TexHandle>>,
}

/// Per-stage execution results from [`CompiledGraph::execute`].
#[derive(Debug, Clone)]
pub struct StageRun {
    /// Stage tag.
    pub name: &'static str,
    /// Device counters summed over the stage's passes.
    pub stats: PassStats,
    /// Host wall time of the stage.
    pub wall_s: f64,
}

/// What [`CompiledGraph::execute`] hands back.
#[derive(Debug, Clone)]
pub struct ExecReport {
    /// One entry per run of consecutive same-stage passes, in order.
    pub stages: Vec<StageRun>,
    /// `(handle, texture)` for every [`TexKind::Output`] texture; the
    /// caller downloads and releases them.
    pub outputs: Vec<(TexHandle, TextureId)>,
}

// ---------------------------------------------------------------------------
// Compilation
// ---------------------------------------------------------------------------

/// Compile `graph` for `profile`. With `fuse` false the schedule is the
/// declared pass list verbatim (the bit-exactness oracle); with `fuse` true
/// the producer→consumer fusion phases run first. Lifetime analysis and
/// slot assignment run either way.
pub fn compile(
    graph: &RenderGraph,
    profile: &GpuProfile,
    fuse: bool,
) -> Result<CompiledGraph, CompileError> {
    let errors = graph.validate(profile);
    if !errors.is_empty() {
        return Err(CompileError { errors });
    }
    let mut passes: Vec<CompiledPass> = graph
        .passes
        .iter()
        .map(|p| CompiledPass {
            name: p.name.clone(),
            stage: p.stage,
            program: p.program.clone(),
            inputs: p.inputs.iter().map(|&(h, _)| h).collect(),
            texcoords: p.texcoords.clone(),
            constants: p.constants.clone(),
            output: p.output,
        })
        .collect();
    let mut eliminated = Vec::new();
    let mut fusions = Vec::new();
    eliminate_dead(&graph.textures, &mut passes, &mut eliminated);
    if fuse {
        phase_a(&graph.textures, &mut passes, profile, &mut fusions);
        eliminate_dead(&graph.textures, &mut passes, &mut eliminated);
        phase_b(&graph.textures, &mut passes, profile, &mut fusions);
    }
    let (meta, slots, release_after) = assign_slots(&graph.textures, &passes);
    Ok(CompiledGraph {
        textures: graph.textures.clone(),
        meta,
        slots,
        passes,
        fusions,
        eliminated,
        fused: fuse,
        release_after,
    })
}

/// Remove passes whose output cannot reach a [`TexKind::Output`] texture.
fn eliminate_dead(
    textures: &[TextureDecl],
    passes: &mut Vec<CompiledPass>,
    eliminated: &mut Vec<String>,
) {
    let mut live_tex = vec![false; textures.len()];
    for (i, t) in textures.iter().enumerate() {
        live_tex[i] = matches!(t.kind, TexKind::Output);
    }
    let mut live_pass = vec![false; passes.len()];
    for (i, p) in passes.iter().enumerate().rev() {
        if live_tex[p.output.0] {
            live_pass[i] = true;
            for &h in &p.inputs {
                live_tex[h.0] = true;
            }
        }
    }
    let mut i = 0;
    passes.retain(|p| {
        let keep = live_pass[i];
        if !keep {
            eliminated.push(p.name.clone());
        }
        i += 1;
        keep
    });
}

/// Where a `TEX` site takes its coordinate from.
#[derive(Clone, Copy, PartialEq)]
enum SiteCoord {
    /// A plain interpolated register: coordinate set index.
    Interpolated(usize),
    /// A computed register (dependent fetch).
    Computed,
}

/// The coordinate sources of every `TEX` on `sampler`.
fn sites_on(program: &Program, sampler: u8) -> Vec<SiteCoord> {
    let mut out = Vec::new();
    for instr in &program.instrs {
        if instr.op == Opcode::Tex && instr.sampler == Some(sampler) {
            let c = &instr.srcs[0];
            out.push(match c.reg {
                Reg::TexCoord(t) if c.swizzle.0[0] == 0 && c.swizzle.0[1] == 1 && !c.negate => {
                    SiteCoord::Interpolated(t as usize)
                }
                _ => SiteCoord::Computed,
            });
        }
    }
    out
}

/// `(pass index, sampler slot)` for every binding of `t` as an input.
/// A pass binding `t` at two slots yields two entries.
fn readers_of(passes: &[CompiledPass], t: TexHandle) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for (i, p) in passes.iter().enumerate() {
        for (s, &h) in p.inputs.iter().enumerate() {
            if h == t {
                out.push((i, s));
            }
        }
    }
    out
}

fn identity_coords(sets: &[TexCoordSet]) -> bool {
    sets.iter().all(|&c| c == TexCoordSet::identity())
}

/// Phase A: inline field producers (see module docs) at all reading sites,
/// all-or-nothing per producer. Candidates are selected on the incoming
/// pass list before any of them is applied.
fn phase_a(
    textures: &[TextureDecl],
    passes: &mut [CompiledPass],
    profile: &GpuProfile,
    fusions: &mut Vec<FusionRecord>,
) {
    let mut candidates = Vec::new();
    for (ti, tex) in textures.iter().enumerate() {
        if !matches!(tex.kind, TexKind::Transient { zeroed: false }) {
            continue;
        }
        let t = TexHandle(ti);
        let Some(prod) = passes.iter().position(|p| p.output == t) else {
            continue;
        };
        let readers = readers_of(passes, t);
        if readers.len() < 2 {
            continue;
        }
        // One slot per reading pass, or the rewrite bookkeeping ambiguates.
        let mut pass_ids: Vec<usize> = readers.iter().map(|&(i, _)| i).collect();
        pass_ids.dedup();
        if pass_ids.len() != readers.len() {
            continue;
        }
        // Site substitution is only exact for identity-coordinate producers.
        if !identity_coords(&passes[prod].texcoords) {
            continue;
        }
        // Field-consumption test: the readers must sample at ≥ 2 distinct
        // coordinate descriptors (or dependently). A texture every reader
        // fetches once at its own position is an accumulator link or a
        // broadcast — materialization already evaluates its body exactly
        // once per fragment, which inlining could only duplicate.
        let mut descs: Vec<Option<TexCoordSet>> = Vec::new();
        for &(pi, slot) in &readers {
            for site in sites_on(&passes[pi].program, slot as u8) {
                descs.push(match site {
                    SiteCoord::Interpolated(x) => passes[pi].texcoords.get(x).copied(),
                    SiteCoord::Computed => None,
                });
            }
        }
        let diverse = descs.iter().any(|d| d.is_none())
            || descs.windows(2).any(|w| w[0] != w[1])
            || descs.len() > readers.len();
        if !diverse {
            continue;
        }
        candidates.push((t, prod, readers));
    }
    for (t, prod, readers) in candidates {
        let mut staged = Vec::with_capacity(readers.len());
        let mut ok = true;
        for &(pi, _) in &readers {
            match fuse_into(textures, &passes[pi], &passes[prod], t, profile) {
                Ok(res) => staged.push((pi, res)),
                Err(_) => {
                    ok = false;
                    break;
                }
            }
        }
        if !ok {
            continue;
        }
        for (pi, (fused, rec)) in staged {
            passes[pi] = fused;
            fusions.push(rec);
        }
        // The producer is now unread; dead-pass elimination reaps it.
    }
}

/// Phase B: collapse single-reader accumulator chains with a forward
/// sweep. A successful collapse removes the producer and immediately
/// retries at the same index, so chains fold until a limit segments them.
fn phase_b(
    textures: &[TextureDecl],
    passes: &mut Vec<CompiledPass>,
    profile: &GpuProfile,
    fusions: &mut Vec<FusionRecord>,
) {
    let mut i = 0;
    while i < passes.len() {
        let t = passes[i].output;
        let collapse = if matches!(textures[t.0].kind, TexKind::Transient { zeroed: false }) {
            let readers = readers_of(passes, t);
            match readers[..] {
                [(r, _)] => fuse_into(textures, &passes[r], &passes[i], t, profile)
                    .ok()
                    .map(|res| (r, res)),
                _ => None,
            }
        } else {
            None
        };
        if let Some((r, (fused, rec))) = collapse {
            passes[r] = fused;
            fusions.push(rec);
            passes.remove(i);
        } else {
            i += 1;
        }
    }
}

/// Build the fused form of `consumer` with `producer`'s body inlined at
/// every site sampling `t`. Errors leave both passes untouched.
fn fuse_into(
    textures: &[TextureDecl],
    consumer: &CompiledPass,
    producer: &CompiledPass,
    t: TexHandle,
    profile: &GpuProfile,
) -> Result<(CompiledPass, FusionRecord), String> {
    if !producer.constants.is_empty() {
        return Err("producer binds pass constants".into());
    }
    let dims = (textures[t.0].width, textures[t.0].height);
    for &h in &producer.inputs {
        if (textures[h.0].width, textures[h.0].height) != dims {
            return Err("producer input size differs from its target".into());
        }
    }
    let slots: Vec<usize> = consumer
        .inputs
        .iter()
        .enumerate()
        .filter(|&(_, &h)| h == t)
        .map(|(s, _)| s)
        .collect();
    let [dying] = slots[..] else {
        return Err("consumer binds the producer at multiple samplers".into());
    };
    let mode = if identity_coords(&producer.texcoords) {
        InlineMode::SubstituteSiteCoord
    } else {
        // Carrying producer coordinates is exact only when every site
        // fetched the producer's texel at its own position.
        let at_identity = sites_on(&consumer.program, dying as u8).iter().all(|s| {
            matches!(*s, SiteCoord::Interpolated(x)
                if consumer.texcoords.get(x) == Some(&TexCoordSet::identity()))
        });
        if !at_identity {
            return Err("producer has shifted coordinates and a non-identity site".into());
        }
        InlineMode::KeepProducerCoords
    };
    // Map producer samplers into the fused pass, reusing existing bindings
    // of the same logical texture and appending the rest.
    let mut inputs = consumer.inputs.clone();
    let mut sampler_map = Vec::with_capacity(producer.inputs.len());
    for &h in &producer.inputs {
        let s = match inputs.iter().position(|&x| x == h) {
            Some(s) if s != dying => s,
            _ => {
                inputs.push(h);
                inputs.len() - 1
            }
        };
        if s >= NUM_SAMPLERS {
            return Err("sampler file exhausted".into());
        }
        sampler_map.push(s as u8);
    }
    // Carry producer coordinate sets in bit-identically (KeepProducerCoords).
    let mut texcoords = consumer.texcoords.clone();
    let mut texcoord_map = Vec::new();
    if mode == InlineMode::KeepProducerCoords {
        for &c in &producer.texcoords {
            let x = match texcoords.iter().position(|&e| e == c) {
                Some(x) => x,
                None => {
                    texcoords.push(c);
                    texcoords.len() - 1
                }
            };
            if x >= NUM_TEXCOORDS {
                return Err("coordinate sets exhausted".into());
            }
            texcoord_map.push(x as u8);
        }
    }
    let bindings = pass_bindings(inputs.len(), texcoords.len(), &consumer.constants);
    let (mut fused, sites) = opt::inline_producer(
        &consumer.program,
        &bindings,
        &InlineRequest {
            producer: &producer.program,
            sampler: dying as u8,
            sampler_map: &sampler_map,
            texcoord_map: &texcoord_map,
            mode,
        },
    )?;
    drop_sampler(&mut fused, &mut inputs, dying);
    let bindings = pass_bindings(inputs.len(), texcoords.len(), &consumer.constants);
    let (mut fused, _) = opt::optimize(&fused, &bindings);
    opt::compact_temps(&mut fused);
    fused.name = consumer.program.name.clone();
    let diags = gpu_sim::verify::verify(&fused, profile, Some(&bindings));
    if gpu_sim::verify::has_errors(&diags) {
        return Err(format!(
            "fused program fails verification: {}",
            diags
                .iter()
                .filter(|d| d.severity == gpu_sim::verify::Severity::Error)
                .map(|d| d.message.as_str())
                .collect::<Vec<_>>()
                .join("; ")
        ));
    }
    let rec = FusionRecord {
        producer: producer.name.clone(),
        consumer: consumer.name.clone(),
        kernels: (producer.program.name.clone(), consumer.program.name.clone()),
        mode,
        sites,
        fetches_before: producer.program.tex_count() + consumer.program.tex_count(),
        fetches_after: fused.tex_count(),
    };
    Ok((
        CompiledPass {
            name: consumer.name.clone(),
            stage: consumer.stage,
            program: fused,
            inputs,
            texcoords,
            constants: consumer.constants.clone(),
            output: consumer.output,
        },
        rec,
    ))
}

/// Remove the (now unreferenced) sampler `slot` and renumber the rest.
fn drop_sampler(program: &mut Program, inputs: &mut Vec<TexHandle>, slot: usize) {
    debug_assert!(program.instrs.iter().all(|i| i.sampler != Some(slot as u8)));
    inputs.remove(slot);
    for instr in &mut program.instrs {
        if let Some(s) = instr.sampler.as_mut() {
            if (*s as usize) > slot {
                *s -= 1;
            }
        }
    }
}

/// Lifetime analysis + greedy size-classed slot assignment. Returns
/// per-texture metadata, the physical slots, and per-pass release lists.
///
/// A texture is live from its producer pass (zero seeds: from their first
/// read, where they materialize zero-filled) to its last read; outputs
/// stay live past the end. Two textures share a slot only when the earlier
/// one's last use strictly precedes the later one's first — mirroring the
/// executor, which returns a transient to the LIFO pool after its last
/// reading pass and draws the next one from the pool at its producer.
type SlotAssignment = (Vec<TextureMeta>, Vec<(usize, usize)>, Vec<Vec<TexHandle>>);

fn assign_slots(textures: &[TextureDecl], passes: &[CompiledPass]) -> SlotAssignment {
    let n = textures.len();
    let mut producer = vec![None; n];
    let mut first = vec![None; n];
    let mut last = vec![None; n];
    for (i, p) in passes.iter().enumerate() {
        for &h in &p.inputs {
            first[h.0].get_or_insert(i);
            last[h.0] = Some(i);
        }
        producer[p.output.0] = Some(i);
        first[p.output.0].get_or_insert(i);
    }
    // Greedy scan in order of first action; most-recently-freed slot wins
    // (the pool is LIFO).
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| (first[i].unwrap_or(usize::MAX), i));
    let mut slots: Vec<(usize, usize, i64)> = Vec::new(); // (w, h, free_from)
    let mut meta: Vec<TextureMeta> = (0..n)
        .map(|i| TextureMeta {
            slot: None,
            producer: producer[i],
            last_use: last[i],
            // Every pass draws a full-target quad and the device stores the
            // whole texel, so any produced texture is fully overwritten
            // before its first read.
            uninit_ok: producer[i].is_some(),
        })
        .collect();
    for &i in &order {
        let Some(f) = first[i] else {
            continue;
        };
        if matches!(textures[i].kind, TexKind::Imported) {
            continue;
        }
        let class = (textures[i].width, textures[i].height);
        let until = match textures[i].kind {
            TexKind::Output => i64::MAX,
            _ => last[i].map_or(f as i64, |l| l as i64),
        };
        let pick = slots
            .iter()
            .enumerate()
            .filter(|(_, &(w, h, free))| (w, h) == class && free >= 0 && free <= f as i64)
            .max_by_key(|&(_, &(_, _, free))| free);
        let slot = match pick {
            Some((s, _)) => s,
            None => {
                slots.push((class.0, class.1, -1));
                slots.len() - 1
            }
        };
        // Free for a successor only after the last use has passed.
        slots[slot].2 = if until == i64::MAX {
            i64::MAX
        } else {
            until + 1
        };
        meta[i].slot = Some(slot);
    }
    let mut release_after = vec![Vec::new(); passes.len()];
    for i in 0..n {
        if let (TexKind::Transient { .. }, Some(l)) = (textures[i].kind, last[i]) {
            release_after[l].push(TexHandle(i));
        }
    }
    (
        meta,
        slots.into_iter().map(|(w, h, _)| (w, h)).collect(),
        release_after,
    )
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

impl CompiledGraph {
    /// Run the compiled graph on `gpu`. `imports` supplies one device
    /// texture per [`TexKind::Imported`] handle (the caller keeps
    /// ownership). Transients are drawn from / returned to the texture
    /// pool around their live range; [`TexKind::Output`] textures are
    /// returned for the caller to download and release.
    pub fn execute(
        &self,
        gpu: &mut Gpu,
        imports: &[(TexHandle, TextureId)],
    ) -> Result<ExecReport, GpuError> {
        let mut ids: Vec<Option<TextureId>> = vec![None; self.textures.len()];
        for &(h, id) in imports {
            if !matches!(self.textures[h.0].kind, TexKind::Imported) {
                return Err(GpuError::InvalidPass {
                    message: format!(
                        "graph texture `{}` is not imported",
                        self.textures[h.0].name
                    ),
                });
            }
            ids[h.0] = Some(id);
        }
        for (i, t) in self.textures.iter().enumerate() {
            if matches!(t.kind, TexKind::Imported)
                && ids[i].is_none()
                && self.meta[i].last_use.is_some()
            {
                return Err(GpuError::InvalidPass {
                    message: format!("imported texture `{}` was not supplied", t.name),
                });
            }
        }
        let mut stages: Vec<StageRun> = Vec::new();
        let mut p = 0;
        while p < self.passes.len() {
            let stage = self.passes[p].stage;
            let end = self.passes[p..]
                .iter()
                .position(|x| x.stage != stage)
                .map_or(self.passes.len(), |off| p + off);
            let _span = trace::span("pipeline.stage", stage);
            let start = Instant::now();
            let mut stats = PassStats::new();
            for i in p..end {
                stats.add(&self.run_pass(gpu, i, &mut ids)?);
            }
            stages.push(StageRun {
                name: stage,
                stats,
                wall_s: start.elapsed().as_secs_f64(),
            });
            p = end;
        }
        let outputs = self
            .textures
            .iter()
            .enumerate()
            .filter(|(_, t)| matches!(t.kind, TexKind::Output))
            .map(|(i, t)| {
                ids[i]
                    .map(|id| (TexHandle(i), id))
                    .ok_or_else(|| GpuError::InvalidPass {
                        message: format!("output texture `{}` was never rendered", t.name),
                    })
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ExecReport { stages, outputs })
    }

    fn run_pass(
        &self,
        gpu: &mut Gpu,
        i: usize,
        ids: &mut [Option<TextureId>],
    ) -> Result<PassStats, GpuError> {
        let pass = &self.passes[i];
        // Zero-seeded accumulators materialize (zero-filled) at first read.
        for &h in &pass.inputs {
            if ids[h.0].is_none() {
                let t = &self.textures[h.0];
                debug_assert!(matches!(t.kind, TexKind::Transient { zeroed: true }));
                ids[h.0] = Some(gpu.alloc_pooled(t.width, t.height)?);
            }
        }
        let out = {
            let t = &self.textures[pass.output.0];
            // The compiler proved the pass overwrites every texel (full
            // quad, whole-texel stores), so a pooled reuse — the aliasing
            // path — skips its zero fill.
            let id = if self.meta[pass.output.0].uninit_ok {
                gpu.alloc_pooled_uninit(t.width, t.height)?
            } else {
                gpu.alloc_pooled(t.width, t.height)?
            };
            ids[pass.output.0] = Some(id);
            id
        };
        let inputs: Vec<TextureId> = pass.inputs.iter().map(|&h| ids[h.0].unwrap()).collect();
        let stats = gpu.run_pass(
            &pass.program,
            &inputs,
            &pass.constants,
            &pass.texcoords,
            out,
            None,
        )?;
        for &h in &self.release_after[i] {
            if let Some(id) = ids[h.0].take() {
                gpu.release_pooled(id)?;
            }
        }
        Ok(stats)
    }

    /// Per-fragment texel fetches summed over the passes of `stage`.
    pub fn stage_fetches_per_fragment(&self, stage: &str) -> usize {
        self.passes
            .iter()
            .filter(|p| p.stage == stage)
            .map(|p| p.program.tex_count())
            .sum()
    }

    /// Number of scheduled passes tagged `stage`.
    pub fn stage_passes(&self, stage: &str) -> usize {
        self.passes.iter().filter(|p| p.stage == stage).count()
    }

    // -- introspection dumps ------------------------------------------------

    /// GraphViz DOT rendering: passes as boxes (fused passes bold), live
    /// textures as ellipses labelled with their physical slot.
    pub fn to_dot(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "digraph render_graph {{");
        let _ = writeln!(s, "  rankdir=LR;");
        let fused_consumers: Vec<&str> = self.fusions.iter().map(|f| f.consumer.as_str()).collect();
        for (i, p) in self.passes.iter().enumerate() {
            let bold = if fused_consumers.contains(&p.name.as_str()) {
                ", style=bold"
            } else {
                ""
            };
            let _ = writeln!(
                s,
                "  p{i} [shape=box{bold}, label=\"{}\\n{} · {} instr · {} fetch\"];",
                p.name,
                p.stage,
                p.program.len(),
                p.program.tex_count()
            );
        }
        for (ti, t) in self.textures.iter().enumerate() {
            if self.meta[ti].last_use.is_none() && self.meta[ti].producer.is_none() {
                continue;
            }
            let slot = match self.meta[ti].slot {
                Some(sl) => format!("slot {sl}"),
                None => "imported".into(),
            };
            let _ = writeln!(
                s,
                "  t{ti} [shape=ellipse, label=\"{}\\n{}x{} · {slot}\"];",
                t.name, t.width, t.height
            );
        }
        for (i, p) in self.passes.iter().enumerate() {
            for &h in &p.inputs {
                let _ = writeln!(s, "  t{} -> p{i};", h.0);
            }
            let _ = writeln!(s, "  p{i} -> t{};", p.output.0);
        }
        let _ = writeln!(s, "}}");
        s
    }

    /// JSON rendering of the compile results: passes, fused pairs, slot
    /// aliasing, and eliminated passes.
    pub fn to_json(&self) -> String {
        let esc = |x: &str| x.replace('\\', "\\\\").replace('"', "\\\"");
        let mut s = String::new();
        let _ = writeln!(s, "{{");
        let _ = writeln!(s, "  \"fused\": {},", self.fused);
        let _ = writeln!(s, "  \"passes\": [");
        for (i, p) in self.passes.iter().enumerate() {
            let comma = if i + 1 < self.passes.len() { "," } else { "" };
            let _ = writeln!(
                s,
                "    {{\"name\": \"{}\", \"stage\": \"{}\", \"kernel\": \"{}\", \
                 \"instructions\": {}, \"fetches\": {}, \"inputs\": [{}], \"output\": \"{}\"}}{comma}",
                esc(&p.name),
                p.stage,
                esc(&p.program.name),
                p.program.len(),
                p.program.tex_count(),
                p.inputs
                    .iter()
                    .map(|&h| format!("\"{}\"", esc(&self.textures[h.0].name)))
                    .collect::<Vec<_>>()
                    .join(", "),
                esc(&self.textures[p.output.0].name)
            );
        }
        let _ = writeln!(s, "  ],");
        let _ = writeln!(s, "  \"fusions\": [");
        for (i, f) in self.fusions.iter().enumerate() {
            let comma = if i + 1 < self.fusions.len() { "," } else { "" };
            let _ = writeln!(
                s,
                "    {{\"producer\": \"{}\", \"consumer\": \"{}\", \"mode\": \"{}\", \
                 \"sites\": {}, \"fetches_before\": {}, \"fetches_after\": {}}}{comma}",
                esc(&f.producer),
                esc(&f.consumer),
                match f.mode {
                    InlineMode::SubstituteSiteCoord => "substitute-site-coord",
                    InlineMode::KeepProducerCoords => "keep-producer-coords",
                },
                f.sites,
                f.fetches_before,
                f.fetches_after
            );
        }
        let _ = writeln!(s, "  ],");
        let _ = writeln!(s, "  \"eliminated\": [");
        for (i, e) in self.eliminated.iter().enumerate() {
            let comma = if i + 1 < self.eliminated.len() {
                ","
            } else {
                ""
            };
            let _ = writeln!(s, "    \"{}\"{comma}", esc(e));
        }
        let _ = writeln!(s, "  ],");
        let _ = writeln!(s, "  \"textures\": [");
        let live: Vec<usize> = (0..self.textures.len())
            .filter(|&i| self.meta[i].producer.is_some() || self.meta[i].last_use.is_some())
            .collect();
        for (k, &ti) in live.iter().enumerate() {
            let comma = if k + 1 < live.len() { "," } else { "" };
            let t = &self.textures[ti];
            let m = &self.meta[ti];
            let _ = writeln!(
                s,
                "    {{\"name\": \"{}\", \"width\": {}, \"height\": {}, \"slot\": {}, \
                 \"uninit_ok\": {}, \"live\": [{}, {}]}}{comma}",
                esc(&t.name),
                t.width,
                t.height,
                m.slot.map_or("null".into(), |x| x.to_string()),
                m.uninit_ok,
                m.producer
                    .or(m.last_use)
                    .map_or("null".into(), |x| x.to_string()),
                m.last_use.map_or("null".into(), |x| x.to_string())
            );
        }
        let _ = writeln!(s, "  ],");
        let _ = writeln!(s, "  \"slots\": {}", self.slots.len());
        let _ = writeln!(s, "}}");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::asm::assemble;
    use proptest::prelude::*;

    /// `out = src` (one fetch at the interpolated coordinate).
    fn copy_program() -> Program {
        assemble("!!copy\nTEX R0, T0, tex0\nMOV OC, R0").unwrap()
    }

    /// `out = prev + src` (accumulator link: prev at s0, src at s1).
    fn acc_program() -> Program {
        assemble("!!acc\nTEX R0, T0, tex0\nTEX R1, T0, tex1\nADD OC, R0, R1").unwrap()
    }

    fn pass(
        name: impl Into<String>,
        program: Program,
        inputs: Vec<(TexHandle, Option<AddressMode>)>,
        output: TexHandle,
    ) -> PassDecl {
        PassDecl {
            name: name.into(),
            stage: "chain",
            program,
            inputs,
            texcoords: vec![TexCoordSet::identity()],
            constants: Vec::new(),
            output,
        }
    }

    /// `len` passes accumulating an imported 4×4 source:
    /// `t0 = src; t1 = t0 + src; …; t(len-1)` is the output.
    fn chain_graph(len: usize) -> (RenderGraph, TexHandle) {
        let mut g = RenderGraph::new();
        let src = g.texture("src", 4, 4, TexKind::Imported);
        let mut prev: Option<TexHandle> = None;
        for j in 0..len {
            let kind = if j + 1 == len {
                TexKind::Output
            } else {
                TexKind::Transient { zeroed: false }
            };
            let out = g.texture(format!("t{j}"), 4, 4, kind);
            let p = match prev {
                None => pass(format!("p{j}"), copy_program(), vec![(src, None)], out),
                Some(t) => pass(
                    format!("p{j}"),
                    acc_program(),
                    vec![(t, None), (src, None)],
                    out,
                ),
            };
            g.add_pass(p);
            prev = Some(out);
        }
        (g, src)
    }

    /// Every pair of textures assigned the same physical slot must have the
    /// same size class and strictly disjoint appearance ranges over the
    /// scheduled passes.
    fn check_alias_invariant(c: &CompiledGraph) {
        let n = c.textures.len();
        let mut lo = vec![usize::MAX; n];
        let mut hi = vec![0usize; n];
        for (i, p) in c.passes.iter().enumerate() {
            for &h in p.inputs.iter().chain(std::iter::once(&p.output)) {
                lo[h.0] = lo[h.0].min(i);
                hi[h.0] = hi[h.0].max(i);
            }
        }
        for a in 0..n {
            for b in a + 1..n {
                let (Some(sa), Some(sb)) = (c.meta[a].slot, c.meta[b].slot) else {
                    continue;
                };
                if sa != sb {
                    continue;
                }
                assert_eq!(
                    (c.textures[a].width, c.textures[a].height),
                    (c.textures[b].width, c.textures[b].height),
                    "slot {sa} mixes size classes"
                );
                assert!(
                    lo[a] != usize::MAX && lo[b] != usize::MAX,
                    "slotted texture never appears in the schedule"
                );
                assert!(
                    hi[a] < lo[b] || hi[b] < lo[a],
                    "`{}` [{}, {}] and `{}` [{}, {}] share slot {sa} while live",
                    c.textures[a].name,
                    lo[a],
                    hi[a],
                    c.textures[b].name,
                    lo[b],
                    hi[b]
                );
            }
        }
    }

    fn run_chain(c: &CompiledGraph, src: TexHandle, data: &[f32]) -> Vec<f32> {
        let mut gpu = Gpu::new(GpuProfile::fx5950_ultra());
        let src_id = gpu.alloc_pooled(4, 4).unwrap();
        gpu.upload(src_id, data).unwrap();
        let report = c.execute(&mut gpu, &[(src, src_id)]).unwrap();
        let [(_, out_id)] = report.outputs[..] else {
            panic!("one output expected")
        };
        let mut out = Vec::new();
        gpu.download_into(out_id, &mut out).unwrap();
        gpu.release_pooled(out_id).unwrap();
        gpu.release_pooled(src_id).unwrap();
        out
    }

    #[test]
    fn validate_rejects_malformed_graphs() {
        let profile = GpuProfile::fx5950_ultra();
        // Duplicate texture names.
        let mut g = RenderGraph::new();
        g.texture("x", 4, 4, TexKind::Imported);
        g.texture("x", 4, 4, TexKind::Imported);
        assert!(g
            .validate(&profile)
            .iter()
            .any(|e| e.contains("declared twice")));
        // Rendering into an imported texture.
        let mut g = RenderGraph::new();
        let a = g.texture("a", 4, 4, TexKind::Imported);
        g.add_pass(pass("p", copy_program(), vec![(a, None)], a));
        assert!(g.validate(&profile).iter().any(|e| e.contains("imported")));
        // Reading a transient before any pass produces it.
        let mut g = RenderGraph::new();
        let t = g.texture("t", 4, 4, TexKind::Transient { zeroed: false });
        let o = g.texture("o", 4, 4, TexKind::Output);
        g.add_pass(pass("p", copy_program(), vec![(t, None)], o));
        assert!(g
            .validate(&profile)
            .iter()
            .any(|e| e.contains("before any pass produces")));
        // Declared output that nothing renders.
        let mut g = RenderGraph::new();
        g.texture("o", 4, 4, TexKind::Output);
        let errs = g.validate(&profile);
        assert!(errs.iter().any(|e| e.contains("never produced")));
        // compile surfaces the same diagnostics as a typed error.
        let err = compile(&g, &profile, true).unwrap_err();
        assert!(err.to_string().contains("render graph rejected"));
    }

    #[test]
    fn dead_passes_are_eliminated() {
        let mut g = RenderGraph::new();
        let src = g.texture("src", 4, 4, TexKind::Imported);
        let dead = g.texture("dead", 4, 4, TexKind::Transient { zeroed: false });
        let out = g.texture("out", 4, 4, TexKind::Output);
        g.add_pass(pass("pd", copy_program(), vec![(src, None)], dead));
        g.add_pass(pass("p1", copy_program(), vec![(src, None)], out));
        let c = compile(&g, &GpuProfile::fx5950_ultra(), false).unwrap();
        assert_eq!(c.passes.len(), 1);
        assert_eq!(c.eliminated, vec!["pd".to_string()]);
        assert_eq!(c.meta[dead.0].slot, None);
        assert_eq!(c.meta[out.0].slot, Some(0));
    }

    #[test]
    fn zero_seed_and_produced_textures_get_correct_fill_metadata() {
        let mut g = RenderGraph::new();
        let src = g.texture("src", 4, 4, TexKind::Imported);
        let seed = g.texture("seed", 4, 4, TexKind::Transient { zeroed: true });
        let out = g.texture("out", 4, 4, TexKind::Output);
        g.add_pass(pass(
            "p0",
            acc_program(),
            vec![(seed, None), (src, None)],
            out,
        ));
        let c = compile(&g, &GpuProfile::fx5950_ultra(), true).unwrap();
        // The seed has no producer: it must materialize zero-filled. The
        // rendered output is fully overwritten, so its alloc may skip the
        // zero fill.
        assert!(!c.meta[seed.0].uninit_ok);
        assert!(c.meta[out.0].uninit_ok);
        // seed + src == src: the zero fill is observable.
        let data: Vec<f32> = (0..64).map(|i| i as f32 * 0.25).collect();
        assert_eq!(run_chain(&c, src, &data), data);
    }

    #[test]
    fn chain_slots_alias_disjoint_lifetimes() {
        let (g, _) = chain_graph(5);
        let c = compile(&g, &GpuProfile::fx5950_ultra(), false).unwrap();
        assert_eq!(c.passes.len(), 5);
        // Four transients plus the output fold onto two physical slots:
        // t0/t2 and t1/t3 ping-pong, and the output moves into the slot t2
        // freed (all lifetimes disjoint).
        assert_eq!(c.slots.len(), 2);
        assert_eq!(c.meta[1].slot, c.meta[3].slot);
        assert_eq!(c.meta[2].slot, c.meta[4].slot);
        assert_eq!(c.meta[5].slot, c.meta[1].slot);
        check_alias_invariant(&c);
    }

    #[test]
    fn fused_chain_is_bit_identical_and_shorter() {
        let (g, src) = chain_graph(4);
        let profile = GpuProfile::fx5950_ultra();
        let unfused = compile(&g, &profile, false).unwrap();
        let fused = compile(&g, &profile, true).unwrap();
        assert_eq!(unfused.passes.len(), 4);
        assert_eq!(fused.passes.len(), 1);
        assert_eq!(fused.fusions.len(), 3);
        assert!(fused
            .fusions
            .iter()
            .all(|f| f.mode == InlineMode::SubstituteSiteCoord));
        // The survivor keeps the final consumer's identity.
        assert_eq!(fused.passes[0].name, "p3");
        let data: Vec<f32> = (0..64).map(|i| (i as f32).sin()).collect();
        let a = run_chain(&unfused, src, &data);
        let b = run_chain(&fused, src, &data);
        assert_eq!(
            a.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            b.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn dot_and_json_dumps_describe_the_compile() {
        let (g, _) = chain_graph(3);
        let c = compile(&g, &GpuProfile::fx5950_ultra(), true).unwrap();
        let dot = c.to_dot();
        assert!(dot.starts_with("digraph render_graph"));
        assert!(dot.contains("p2"));
        assert!(dot.contains("style=bold"));
        let json = c.to_json();
        assert!(json.contains("\"fused\": true"));
        assert!(json.contains("\"substitute-site-coord\""));
        assert!(json.contains("\"slots\": "));
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "JSON braces balance"
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]
        /// Compilation never assigns two textures with overlapping
        /// lifetimes (or different size classes) to the same slot, fused or
        /// not, across interleaved accumulator chains of random lengths.
        #[test]
        fn compiled_graphs_never_alias_overlapping_lifetimes(
            chains in proptest::collection::vec((1usize..6, 0usize..2), 1..5),
            fuse in any::<bool>(),
        ) {
            let sizes = [(4usize, 4usize), (8, 2)];
            let mut g = RenderGraph::new();
            let srcs: Vec<TexHandle> = sizes
                .iter()
                .enumerate()
                .map(|(i, &(w, h))| g.texture(format!("src{i}"), w, h, TexKind::Imported))
                .collect();
            let mut prevs: Vec<Option<TexHandle>> = vec![None; chains.len()];
            let longest = chains.iter().map(|&(len, _)| len).max().unwrap();
            for j in 0..longest {
                for (ci, &(len, cls)) in chains.iter().enumerate() {
                    if j >= len {
                        continue;
                    }
                    let (w, h) = sizes[cls];
                    let kind = if j + 1 == len {
                        TexKind::Output
                    } else {
                        TexKind::Transient { zeroed: false }
                    };
                    let out = g.texture(format!("c{ci}t{j}"), w, h, kind);
                    let p = match prevs[ci] {
                        None => pass(format!("c{ci}p{j}"), copy_program(), vec![(srcs[cls], None)], out),
                        Some(t) => pass(
                            format!("c{ci}p{j}"),
                            acc_program(),
                            vec![(t, None), (srcs[cls], None)],
                            out,
                        ),
                    };
                    g.add_pass(p);
                    prevs[ci] = Some(out);
                }
            }
            let c = compile(&g, &GpuProfile::fx5950_ultra(), fuse).unwrap();
            check_alias_invariant(&c);
        }
    }
}
