//! Multi-device AMC: the GPU stream pipeline sharded across a fleet of
//! simulated devices, with the CPU tail classifying the merged MEI.
//!
//! ```text
//! GPU_SIM_DEVICES=7800gtx,7800gtx cargo run --release --example fleet_classify [seed]
//! ```
//!
//! `GPU_SIM_DEVICES` is a comma-separated device list (default `7800gtx`);
//! unknown names abort with the list of known devices. The renders written
//! to `out/fleet_*.p[gp]m` are byte-identical for every fleet shape — the
//! chunk plan is fleet-shape-independent and the executor merges chunk
//! results in deterministic chunk order — which CI's fleet-parity job
//! checks by diffing runs with different `GPU_SIM_DEVICES`.

use hyperspec::amc::fleet::{parse_device_list, DeviceFleet};
use hyperspec::prelude::*;
use hyperspec::scene::library::indian_pines_classes;
use hyperspec::scene::render;

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2026);
    let device_list = std::env::var("GPU_SIM_DEVICES").unwrap_or_else(|_| "7800gtx".to_owned());
    let profiles = match parse_device_list(&device_list) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };

    let classes = indian_pines_classes();
    println!("generating the synthetic Indian Pines analogue (seed {seed})...");
    let scene = generate(&classes, &SceneConfig::reduced_indian_pines(seed));
    let dims = scene.cube.dims();

    let config = AmcConfig::paper_default(classes.len());
    let amc = GpuAmc::new(config.se.clone(), KernelMode::Closure);
    let fleet = DeviceFleet::new(profiles);
    println!(
        "running the stream pipeline on {} device(s): {}",
        fleet.profiles().len(),
        fleet
            .profiles()
            .iter()
            .map(|p| p.short_name())
            .collect::<Vec<_>>()
            .join(", ")
    );
    let out = fleet.run(&amc, &scene.cube).expect("fleet AMC run");
    println!(
        "fleet processed {} chunks ({} lines + {} halo) in {:.2}s wall, \
         {} steal(s), modeled makespan {:.6}s",
        out.pipeline.chunks,
        out.chunking.lines_per_chunk,
        out.chunking.halo,
        out.wall_s,
        out.steals,
        out.modeled_makespan_s
    );
    for (i, d) in out.devices.iter().enumerate() {
        println!(
            "  dev{} {:<8} planned {:>2} chunk(s) -> executed {:>2} \
             ({} stolen) | modeled {:.6}s | wall {:.3}s",
            i,
            d.profile.short_name(),
            d.planned.len(),
            d.executed.len(),
            d.steals,
            d.modeled_s,
            d.wall_s
        );
    }

    let classifier = AmcClassifier::new(config);
    let classified = classifier
        .classify_with_mei(&scene.cube, out.pipeline.mei.clone())
        .expect("CPU tail");
    println!("{} endmembers extracted", classified.class_count());

    let out_dir = std::path::Path::new("out");
    render::write_file(
        &out_dir.join("fleet_mei.pgm"),
        &render::scores_to_pgm(&out.pipeline.mei.scores, dims.width, dims.height),
    )
    .expect("write MEI render");
    let mapped = hyperspec::hsi::metrics::map_clusters_to_truth(
        &scene.ground_truth,
        &classified.labels,
        classified.class_count(),
        classes.len(),
    )
    .expect("mapping");
    render::write_file(
        &out_dir.join("fleet_classified.ppm"),
        &render::labels_to_ppm(&mapped, dims.width, dims.height),
    )
    .expect("write classification render");
    println!("renders written to out/fleet_mei.pgm, out/fleet_classified.ppm");
}
