//! Analytic work model for the GPU pipeline.
//!
//! Tables 4–5 of the paper cover image sizes up to the full 547 MB Indian
//! Pines scene. Executing the functional simulator at that scale is neither
//! necessary nor useful — counted work is a *deterministic* function of the
//! image geometry and the stage structure, so this module predicts the exact
//! [`PassStats`] the pipeline would produce. The prediction is validated
//! against executed-simulation counters on small cubes (see the tests and
//! `tests/` integration suite); only the texture-cache hit rate is a modeled
//! parameter (calibrated from executed runs).

use crate::kernels;
use crate::layout;
use crate::pipeline::{GpuAmc, KernelMode};
use gpu_sim::counters::PassStats;
use gpu_sim::device::GpuProfile;
use gpu_sim::timing::{self, GpuTime};
use hsi::cube::{Chunking, CubeDims};
use hsi::morphology::StructuringElement;

/// Default texture-cache hit rate assumed by the analytic model. The AMC
/// access patterns (identity + small-shift fetches) measure ~0.94 in
/// executed simulations across sizes (see the calibration test below).
pub const DEFAULT_CACHE_HIT_RATE: f64 = 0.94;

/// Analytic prediction parameters.
#[derive(Debug, Clone, Copy)]
pub struct PredictConfig {
    /// Assumed texture-cache hit rate (`[0, 1]`).
    pub cache_hit_rate: f64,
    /// Include host↔device stream transfer counts.
    pub include_transfers: bool,
}

impl Default for PredictConfig {
    fn default() -> Self {
        Self {
            cache_hit_rate: DEFAULT_CACHE_HIT_RATE,
            include_transfers: true,
        }
    }
}

/// Exact per-chunk work counts (cache split governed by the config).
pub fn predict_chunk_stats(
    width: usize,
    height: usize,
    bands: usize,
    se: &StructuringElement,
    config: &PredictConfig,
) -> PassStats {
    let frag = (width * height) as u64;
    let g = layout::band_groups(bands) as u64;
    let p_b = se.len() as u64;

    // Pass structure mirrors `pipeline::run_chunk` exactly.
    let passes = g + g + (p_b - 1) * g + p_b + g;
    let instructions = frag
        * (g * kernels::BAND_SUM_COST
            + g * kernels::NORMALIZE_COST
            + (p_b - 1) * g * kernels::SID_PARTIAL_COST
            + kernels::MINMAX_INIT_COST
            + (p_b - 1) * kernels::MINMAX_UPDATE_COST
            + g * kernels::MEI_PARTIAL_COST);
    let texel_fetches = frag
        * (g * 2              // band sums
            + g * 2           // normalize
            + (p_b - 1) * g * 3 // sid partial
            + 1               // minmax init
            + (p_b - 1) * 2   // minmax update
            + g * 6); // mei partial
                      // Every pass writes one RGBA32F texel per fragment.
    let bytes_written = frag * 16 * passes;

    let (bytes_uploaded, bytes_downloaded) = if config.include_transfers {
        let plane = layout::plane_bytes(width, height) as u64;
        (g * plane + p_b * 16, 2 * plane)
    } else {
        (0, 0)
    };

    let cache_misses = ((texel_fetches as f64) * (1.0 - config.cache_hit_rate)).round() as u64;
    // Tile geometry is deterministic: every pass covers the chunk with the
    // executor's TILE_W x TILE_ROWS shading grid.
    let tiles_per_pass = (width.div_ceil(gpu_sim::raster::TILE_W)
        * height.div_ceil(gpu_sim::raster::TILE_ROWS)) as u64;
    PassStats {
        fragments: frag * passes,
        instructions,
        texel_fetches,
        cache_hits: texel_fetches - cache_misses,
        cache_misses,
        bytes_written,
        bytes_uploaded,
        bytes_downloaded,
        passes,
        tiles: passes * tiles_per_pass,
    }
}

/// Predict total stats for a full image processed with the given chunking.
pub fn predict_stats(
    dims: CubeDims,
    se: &StructuringElement,
    chunking: Chunking,
    config: &PredictConfig,
) -> PassStats {
    let mut total = PassStats::default();
    let mut y = 0usize;
    while y < dims.height {
        let body = chunking.lines_per_chunk.min(dims.height - y);
        let halo_top = chunking.halo.min(y);
        let halo_bottom = chunking.halo.min(dims.height - (y + body));
        let h = halo_top + body + halo_bottom;
        total.add(&predict_chunk_stats(dims.width, h, dims.bands, se, config));
        y += body;
    }
    total
}

/// Modeled execution of the AMC pipeline for an image on a GPU profile,
/// with the chunking that profile's memory forces.
///
/// Planning goes through [`GpuAmc::plan_chunking_for_budget`] — the same
/// planner the executor uses — so predicted chunk geometry can never drift
/// from executed chunk geometry. Fails like the executor would when even a
/// single line cannot fit the profile's video memory.
pub fn predict_gpu_time(
    dims: CubeDims,
    se: &StructuringElement,
    profile: &GpuProfile,
    config: &PredictConfig,
) -> crate::pipeline::Result<(GpuTime, PassStats)> {
    let amc = GpuAmc::new(se.clone(), KernelMode::Closure);
    let chunking = amc.plan_chunking_for_budget(
        profile.video_memory_bytes(),
        dims.width,
        dims.height,
        dims.bands,
    )?;
    let stats = predict_stats(dims, se, chunking, config);
    Ok((timing::gpu_time(&stats, profile), stats))
}

/// Modeled seconds one device of a fleet spends on one `width × height ×
/// bands` chunk: exact predicted counters for the chunk geometry, the
/// profile's roofline rates, a host link shared with `bus_sharers - 1`
/// other devices, and the double-buffered executor's overlapped transfer
/// model. This is the weight the fleet's initial placement and
/// steal-victim selection use.
pub fn predict_chunk_time_s(
    width: usize,
    height: usize,
    bands: usize,
    se: &StructuringElement,
    profile: &GpuProfile,
    bus_sharers: usize,
    config: &PredictConfig,
) -> f64 {
    let stats = predict_chunk_stats(width, height, bands, se, config);
    timing::gpu_time_shared(&stats, profile, bus_sharers)
        .total_s_mode(timing::TransferMode::Overlapped)
}

/// The six cropped-scene sizes of Tables 4–5, as numbers of lines of the
/// 2166-sample × 216-band Indian Pines scene closest to the quoted MB sizes.
pub fn paper_image_sizes() -> Vec<(f64, CubeDims)> {
    // The six sizes are 1/8, 1/4, 3/8, 1/2, 3/4 and all of the 614 lines.
    [
        (68.0f64, 1.0 / 8.0),
        (136.0, 1.0 / 4.0),
        (205.0, 3.0 / 8.0),
        (273.0, 1.0 / 2.0),
        (410.0, 3.0 / 4.0),
        (547.0, 1.0),
    ]
    .iter()
    .map(|&(mb, frac)| {
        let lines = (614.0f64 * frac).round() as usize;
        (mb, CubeDims::new(2166, lines, 216))
    })
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{GpuAmc, KernelMode};
    use gpu_sim::gpu::Gpu;
    use hsi::cube::{Cube, Interleave};

    fn config_no_cache_assumption() -> PredictConfig {
        PredictConfig {
            cache_hit_rate: 0.5,
            include_transfers: true,
        }
    }

    #[test]
    fn prediction_matches_executed_simulation_exactly() {
        // Deterministic counters: fragments, instructions, fetches, bytes
        // and passes must match an executed run bit-for-bit.
        let dims = CubeDims::new(14, 11, 10);
        let cube = Cube::from_fn(dims, Interleave::Bip, |x, y, b| {
            1.0 + ((x * 31 + y * 17 + b * 7) % 23) as f32
        })
        .unwrap();
        let se = StructuringElement::square(3).unwrap();
        let mut gpu = Gpu::new(GpuProfile::geforce_7800gtx());
        let out = GpuAmc::new(se.clone(), KernelMode::Closure)
            .run_chunk(&mut gpu, &cube)
            .unwrap();
        let pred = predict_chunk_stats(14, 11, 10, &se, &PredictConfig::default());
        assert_eq!(pred.passes, out.stats.passes);
        assert_eq!(pred.fragments, out.stats.fragments);
        assert_eq!(pred.instructions, out.stats.instructions);
        assert_eq!(pred.texel_fetches, out.stats.texel_fetches);
        assert_eq!(pred.bytes_written, out.stats.bytes_written);
        assert_eq!(pred.bytes_uploaded, out.stats.bytes_uploaded);
        assert_eq!(pred.bytes_downloaded, out.stats.bytes_downloaded);
        assert_eq!(pred.tiles, out.stats.tiles);
    }

    #[test]
    fn measured_cache_hit_rate_is_near_model_default() {
        let dims = CubeDims::new(48, 48, 8);
        let cube = Cube::from_fn(dims, Interleave::Bip, |x, y, b| {
            1.0 + ((x + y + b) % 13) as f32
        })
        .unwrap();
        let se = StructuringElement::square(3).unwrap();
        let mut gpu = Gpu::new(GpuProfile::geforce_7800gtx());
        let out = GpuAmc::new(se, KernelMode::Closure)
            .run_chunk(&mut gpu, &cube)
            .unwrap();
        let measured = out.stats.cache_hit_rate();
        assert!(
            (measured - DEFAULT_CACHE_HIT_RATE).abs() < 0.1,
            "measured hit rate {measured}"
        );
    }

    #[test]
    fn prediction_scales_linearly_with_lines() {
        let se = StructuringElement::square(3).unwrap();
        let cfg = config_no_cache_assumption();
        let a = predict_chunk_stats(100, 100, 216, &se, &cfg);
        let b = predict_chunk_stats(100, 200, 216, &se, &cfg);
        assert_eq!(b.instructions, 2 * a.instructions);
        assert_eq!(b.texel_fetches, 2 * a.texel_fetches);
    }

    #[test]
    fn chunked_prediction_adds_halo_overhead() {
        let se = StructuringElement::square(3).unwrap();
        let cfg = PredictConfig::default();
        let dims = CubeDims::new(64, 64, 16);
        let whole = predict_stats(dims, &se, Chunking::new(64, 2), &cfg);
        let chunked = predict_stats(dims, &se, Chunking::new(8, 2), &cfg);
        assert!(chunked.instructions > whole.instructions);
        // Halo of 2 on 8-line chunks ≈ 50% overhead ceiling.
        assert!(chunked.instructions < whole.instructions * 3 / 2);
    }

    #[test]
    fn gpu_generations_rank_correctly_at_paper_scale() {
        let se = StructuringElement::square(3).unwrap();
        let cfg = PredictConfig::default();
        for (_, dims) in paper_image_sizes() {
            let (fx, _) = predict_gpu_time(dims, &se, &GpuProfile::fx5950_ultra(), &cfg).unwrap();
            let (g70, _) =
                predict_gpu_time(dims, &se, &GpuProfile::geforce_7800gtx(), &cfg).unwrap();
            let ratio = fx.kernel_s() / g70.kernel_s();
            assert!(ratio > 3.0 && ratio < 7.0, "ratio {ratio} at {dims:?}");
        }
    }

    #[test]
    fn paper_sizes_reproduce_mb_column() {
        let sizes = paper_image_sizes();
        assert_eq!(sizes.len(), 6);
        for (mb, dims) in &sizes {
            let actual = dims.sensor_mib();
            assert!(
                (actual - mb).abs() / mb < 0.02,
                "{mb} MB → {actual} MiB ({dims:?})"
            );
        }
        // Largest size is the full scene.
        assert_eq!(sizes[5].1.height, 614);
    }

    #[test]
    fn modeled_time_scales_linearly_with_size() {
        let se = StructuringElement::square(3).unwrap();
        let cfg = PredictConfig::default();
        let sizes = paper_image_sizes();
        let profile = GpuProfile::geforce_7800gtx();
        let (t1, _) = predict_gpu_time(sizes[0].1, &se, &profile, &cfg).unwrap();
        let (t5, _) = predict_gpu_time(sizes[5].1, &se, &profile, &cfg).unwrap();
        let time_ratio = t5.kernel_s() / t1.kernel_s();
        let size_ratio = sizes[5].1.pixels() as f64 / sizes[0].1.pixels() as f64;
        assert!(
            (time_ratio / size_ratio - 1.0).abs() < 0.1,
            "time {time_ratio} vs size {size_ratio}"
        );
    }
}
