//! The simulated GPU device.
//!
//! Owns textures under the profile's video-memory budget, executes render
//! passes (fragment programs over full-screen quads) across parallel
//! fragment pipes, and accumulates performance counters. Two kernel forms
//! are supported:
//!
//! * **ISA passes** ([`Gpu::run_pass`]) execute assembled fragment programs
//!   through the interpreter — bit-faithful to what the modelled hardware
//!   would compute, with exact instruction/texel counts.
//! * **Closure passes** ([`Gpu::run_closure_pass`]) run a Rust closure per
//!   fragment with a caller-declared instruction cost — the fast path for
//!   large experiments, validated against the ISA path in tests.
//!
//! Both forms shade the render target as independent
//! [`TILE_W`](crate::raster::TILE_W)`x`[`TILE_ROWS`](crate::raster::TILE_ROWS)
//! tiles dispatched on the host worker pool (one simulated fragment pipe per
//! tile, each with its own texture-cache model). Per-tile counters are
//! merged in tile order, so aggregate statistics and output texels are
//! bit-identical at every thread count. ISA passes execute through a
//! [`LoweredProgram`](crate::interp::LoweredProgram) — operands decoded and
//! constants folded once per (program, constants) bind, cached on the device
//! next to the verification cache.

use crate::counters::{PassStats, TileCounts};
use crate::device::GpuProfile;
use crate::error::{GpuError, Result};
use crate::interp::{self, FragmentInput, LoweredProgram};
use crate::isa::Program;
use crate::opt;
use crate::raster::{self, fragment_input, Quad, TexCoordSet};
use crate::texcache::TextureCache;
use crate::texture::{AddressMode, Texel, Texture2D};
use crate::verify;
use rayon::prelude::*;
use std::cell::Cell;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::Instant;
use trace::ArgValue;

/// Handle to a texture resident in simulated video memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TextureId(pub(crate) u32);

/// Counted texture access interface handed to closure kernels.
pub struct Fetcher<'a> {
    textures: &'a [&'a Texture2D],
    fetches: Cell<u64>,
    cache: Option<*mut TextureCache>,
}

impl<'a> Fetcher<'a> {
    fn new(textures: &'a [&'a Texture2D], cache: Option<&mut TextureCache>) -> Self {
        Self {
            textures,
            fetches: Cell::new(0),
            cache: cache.map(|c| c as *mut _),
        }
    }

    /// Integer texel fetch from bound sampler `sampler`, honouring the
    /// texture's address mode. Counted.
    pub fn fetch(&self, sampler: usize, x: i64, y: i64) -> Texel {
        self.fetches.set(self.fetches.get() + 1);
        let tex = self.textures[sampler];
        if let Some(cache) = self.cache {
            // Tag the cache with the texel the address mode actually routes
            // the fetch to; a border fetch touches no texel and therefore
            // generates no cache traffic.
            if let Some((cx, cy)) = tex.resolve_coords(x, y) {
                // SAFETY: the Fetcher lives inside one rayon task; the cache
                // pointer targets that task's private cache.
                unsafe { (*cache).access(sampler as u32, cx, cy) };
            }
        }
        tex.fetch(x, y)
    }

    /// Number of samplers bound.
    pub fn samplers(&self) -> usize {
        self.textures.len()
    }

    fn take_count(&self) -> u64 {
        self.fetches.get()
    }
}

/// Key of the device-level verification cache: one entry per distinct
/// (program text, pass bindings) pair already proven clean on this device.
/// The profile is not part of the key — each `Gpu` owns its own cache.
#[derive(PartialEq, Eq, Hash)]
struct VerifyKey {
    /// Canonical program text (name, `DEF`s, instructions).
    program: String,
    /// The bindings the program was verified against.
    bindings: verify::PassBindings,
}

/// Key of the device-level lowering cache, keyed like the verification
/// cache on canonical program text, plus the pass-constant values the
/// lowering folded into immediates (as exact bit patterns, so the key is
/// hashable and two bindings differing only in a constant value get
/// distinct lowerings).
#[derive(PartialEq, Eq, Hash)]
struct LowerKey {
    /// Canonical program text (name, `DEF`s, instructions).
    program: String,
    /// Pass constants as `(index, value-bit-pattern)` in binding order.
    constants: Vec<(u8, [u32; 4])>,
    /// `Some(bindings)` when the optimizer shaped this lowering (the
    /// optimized form depends on the pass bindings), `None` when the raw
    /// program was lowered (`GPU_SIM_OPT=0`). Keying the flag into the
    /// cache keeps optimized and raw lowerings from ever aliasing.
    opt: Option<verify::PassBindings>,
    /// Whether the lowering was scheduled for the batched executor
    /// ([`opt::schedule_for_batch`]); keyed so scalar (`GPU_SIM_BATCH=0`)
    /// and batched lowerings of the same program never alias.
    batch: bool,
}

/// Shade `out` (the scratch buffer for `quad`) as independent tiles on the
/// worker pool. `shade_tile` is called once per tile with the tile's origin
/// in target coordinates, its rows (as mutable row segments of `out`), and
/// a private texture-cache model; it returns the (instructions, fetches) it
/// executed. Returns per-tile counters in tile order.
fn shade_tiled<F>(
    out: &mut [Texel],
    quad: &Quad,
    cache_model: bool,
    shade_tile: F,
) -> Vec<TileCounts>
where
    F: Fn(usize, usize, Vec<&mut [Texel]>, Option<&mut TextureCache>) -> (u64, u64) + Sync,
{
    let cols = quad.tile_cols();
    let tiles = quad.tile_count();
    // A tile's rows are disjoint contiguous segments of the row-major
    // scratch buffer, so the split needs no unsafe: chunk into rows, chunk
    // each row into tile-width segments, group segments by tile.
    let mut tile_rows: Vec<Vec<&mut [Texel]>> = Vec::with_capacity(tiles);
    tile_rows.resize_with(tiles, Vec::new);
    for (y, row) in out.chunks_mut(quad.width).enumerate() {
        let band = y / raster::TILE_ROWS;
        for (col, seg) in row.chunks_mut(raster::TILE_W).enumerate() {
            tile_rows[band * cols + col].push(seg);
        }
    }
    let mut counts = vec![TileCounts::default(); tiles];
    let work: Vec<(usize, Vec<&mut [Texel]>, &mut TileCounts)> = tile_rows
        .into_iter()
        .zip(counts.iter_mut())
        .enumerate()
        .map(|(tile, (rows, slot))| (tile, rows, slot))
        .collect();
    work.into_par_iter().for_each(|(tile, rows, slot)| {
        let mut cache = cache_model.then(TextureCache::per_pipe_default);
        let x0 = quad.x0 + (tile % cols) * raster::TILE_W;
        let y0 = quad.y0 + (tile / cols) * raster::TILE_ROWS;
        let _tile_span = trace::span_with(
            "gpu.tile",
            "tile",
            &[
                ("x0", ArgValue::U64(x0 as u64)),
                ("y0", ArgValue::U64(y0 as u64)),
            ],
        );
        let (instructions, texel_fetches) = shade_tile(x0, y0, rows, cache.as_mut());
        *slot = TileCounts {
            instructions,
            texel_fetches,
            cache_hits: cache.as_ref().map_or(0, TextureCache::hits),
            cache_misses: cache.as_ref().map_or(0, TextureCache::misses),
        };
    });
    counts
}

/// Copy a shaded quad's scratch rows into the target texture (row-contiguous
/// block copies; the scratch buffer is row-major over the quad).
fn resolve_to_target(tgt: &mut Texture2D, quad: &Quad, out: &[Texel]) {
    let tw = tgt.width();
    let texels = tgt.texels_mut();
    for (row, chunk) in out.chunks_exact(quad.width).enumerate() {
        let base = (quad.y0 + row) * tw + quad.x0;
        texels[base..base + quad.width].copy_from_slice(chunk);
    }
}

/// The simulated device.
pub struct Gpu {
    profile: GpuProfile,
    textures: HashMap<u32, Texture2D>,
    next_id: u32,
    allocated_bytes: usize,
    stats: PassStats,
    cache_model: bool,
    /// Size-classed free lists of released pooled textures, still resident
    /// in video memory and ready for zero-fill reuse.
    pool: HashMap<(usize, usize), Vec<Texture2D>>,
    pool_bytes: usize,
    texture_allocs: u64,
    pool_hits: u64,
    zero_fill_skips: u64,
    verify_cache: HashSet<VerifyKey>,
    verify_runs: u64,
    verify_cache_hits: u64,
    lowered_cache: HashMap<LowerKey, Arc<LoweredProgram>>,
    lower_runs: u64,
    lower_cache_hits: u64,
    /// Whether ISA passes shade the statically optimized program form
    /// (default; `GPU_SIM_OPT=0` disables).
    opt_enabled: bool,
    opt_runs: u64,
    opt_reports: Vec<opt::OptReport>,
    /// Whether ISA passes shade tiles through the batched SoA executor
    /// (default; `GPU_SIM_BATCH=0` falls back to the per-fragment oracle).
    batch_enabled: bool,
}

impl Gpu {
    /// Create a device with the given hardware profile.
    pub fn new(profile: GpuProfile) -> Self {
        Self {
            profile,
            textures: HashMap::new(),
            next_id: 0,
            allocated_bytes: 0,
            stats: PassStats::default(),
            cache_model: true,
            pool: HashMap::new(),
            pool_bytes: 0,
            texture_allocs: 0,
            pool_hits: 0,
            zero_fill_skips: 0,
            verify_cache: HashSet::new(),
            verify_runs: 0,
            verify_cache_hits: 0,
            lowered_cache: HashMap::new(),
            lower_runs: 0,
            lower_cache_hits: 0,
            opt_enabled: std::env::var("GPU_SIM_OPT").map_or(true, |v| v != "0"),
            opt_runs: 0,
            opt_reports: Vec::new(),
            batch_enabled: std::env::var("GPU_SIM_BATCH").map_or(true, |v| v != "0"),
        }
    }

    /// The hardware profile.
    pub fn profile(&self) -> &GpuProfile {
        &self.profile
    }

    /// Enable/disable the texture-cache model (ablation hook). Functional
    /// results are unaffected; only hit/miss counters change.
    pub fn set_cache_model(&mut self, enabled: bool) {
        self.cache_model = enabled;
    }

    /// Bytes of video memory still free (pooled textures count as occupied
    /// until evicted or drained).
    pub fn free_bytes(&self) -> usize {
        self.profile.video_memory_bytes() - self.allocated_bytes - self.pool_bytes
    }

    /// Bytes of video memory in use by live textures.
    pub fn allocated_bytes(&self) -> usize {
        self.allocated_bytes
    }

    /// Bytes of video memory held by released pooled textures.
    pub fn pooled_bytes(&self) -> usize {
        self.pool_bytes
    }

    /// Number of real texture allocations performed (pool hits excluded).
    pub fn texture_allocs(&self) -> u64 {
        self.texture_allocs
    }

    /// Number of [`Gpu::alloc_pooled`] requests served from the free lists.
    pub fn pool_hits(&self) -> u64 {
        self.pool_hits
    }

    /// Number of pooled reuses that skipped the zero-fill because the
    /// caller proved every texel is overwritten before it is read
    /// ([`Gpu::alloc_pooled_uninit`]).
    pub fn zero_fill_skips(&self) -> u64 {
        self.zero_fill_skips
    }

    /// Number of full dataflow verifications executed on this device
    /// (verification-cache misses).
    pub fn verifications(&self) -> u64 {
        self.verify_runs
    }

    /// Number of passes whose verification was satisfied from the cache.
    pub fn verify_cache_hits(&self) -> u64 {
        self.verify_cache_hits
    }

    /// Number of program lowerings executed on this device (lowering-cache
    /// misses).
    pub fn lowerings(&self) -> u64 {
        self.lower_runs
    }

    /// Number of ISA passes whose lowering was satisfied from the cache.
    pub fn lower_cache_hits(&self) -> u64 {
        self.lower_cache_hits
    }

    /// Fetch or build the lowered form of `(program, constants)`. The
    /// canonical program text is shared with the verification-cache key.
    ///
    /// When the optimizer is enabled, the cache miss path first rewrites the
    /// program through [`opt::optimize`] under the pass `bindings`, re-runs
    /// the verifier on the optimized form (outside the verification cache and
    /// its counters — this is a safety net, not a pass admission check), and
    /// lowers the optimized program. `GPU_SIM_OPT=0` lowers the raw program;
    /// the choice is part of the cache key.
    fn lowered_for(
        &mut self,
        asm: &str,
        program: &Program,
        constants: &[(u8, [f32; 4])],
        bindings: &verify::PassBindings,
    ) -> Arc<LoweredProgram> {
        let key = LowerKey {
            program: asm.to_owned(),
            constants: constants
                .iter()
                .map(|&(idx, v)| (idx, v.map(f32::to_bits)))
                .collect(),
            opt: self.opt_enabled.then(|| bindings.clone()),
            batch: self.batch_enabled,
        };
        if let Some(lowered) = self.lowered_cache.get(&key) {
            self.lower_cache_hits += 1;
            trace::metrics::incr("gpu.lower.cache_hits", 1);
            return Arc::clone(lowered);
        }
        self.lower_runs += 1;
        trace::metrics::incr("gpu.lower.runs", 1);
        let mut shaded = program;
        let optimized;
        if self.opt_enabled {
            let (opt_program, report) = opt::optimize(program, bindings);
            self.opt_runs += 1;
            trace::metrics::incr("gpu.opt.runs", 1);
            // Every optimized program must still satisfy the verifier; a
            // rewrite that breaks verification would be an optimizer bug, so
            // shade the raw program instead of failing the pass.
            let diags = verify::verify(&opt_program, &self.profile, Some(bindings));
            if verify::has_errors(&diags) {
                debug_assert!(false, "optimizer broke verification: {diags:?}");
            } else {
                optimized = opt_program;
                shaded = &optimized;
                if !self.opt_reports.contains(&report) {
                    self.opt_reports.push(report);
                }
            }
        }
        // Batched lowerings are additionally scheduled for the SoA executor
        // (TEX fetches hoisted as early as dependences allow — an exact,
        // count-preserving reordering), which is why `batch` is part of the
        // cache key: scalar and batched forms of the same bind differ.
        let scheduled;
        if self.batch_enabled {
            scheduled = opt::schedule_for_batch(shaded);
            shaded = &scheduled;
        }
        let resolved = interp::resolve_constants(shaded, constants);
        let lowered = Arc::new(interp::lower(shaded, &resolved));
        self.lowered_cache.insert(key, Arc::clone(&lowered));
        lowered
    }

    /// Whether ISA passes shade statically optimized programs. Defaults to
    /// the `GPU_SIM_OPT` environment variable (`0` disables, anything else —
    /// including unset — enables).
    pub fn optimizer_enabled(&self) -> bool {
        self.opt_enabled
    }

    /// Override the `GPU_SIM_OPT` default for this device. Takes effect on
    /// the next lowering-cache miss; existing cache entries keep the setting
    /// they were built under (the flag is part of the cache key).
    pub fn set_optimizer(&mut self, enabled: bool) {
        self.opt_enabled = enabled;
    }

    /// Number of optimizer runs executed on this device (one per
    /// lowering-cache miss while the optimizer is enabled).
    pub fn opt_runs(&self) -> u64 {
        self.opt_runs
    }

    /// Deduplicated per-kernel before/after reports for every program this
    /// device optimized.
    pub fn opt_reports(&self) -> &[opt::OptReport] {
        &self.opt_reports
    }

    /// Whether ISA passes shade tiles through the batched SoA executor.
    /// Defaults to the `GPU_SIM_BATCH` environment variable (`0` disables,
    /// anything else — including unset — enables).
    pub fn batch_execution_enabled(&self) -> bool {
        self.batch_enabled
    }

    /// Override the `GPU_SIM_BATCH` default for this device. Takes effect on
    /// the next lowering-cache miss; existing cache entries keep the setting
    /// they were built under (the flag is part of the cache key).
    pub fn set_batch_execution(&mut self, enabled: bool) {
        self.batch_enabled = enabled;
    }

    /// Cumulative counters since the last [`Gpu::reset_stats`].
    pub fn stats(&self) -> PassStats {
        self.stats
    }

    /// Zero the cumulative counters.
    pub fn reset_stats(&mut self) {
        self.stats = PassStats::default();
    }

    /// Evict released pooled textures until at least `bytes` are free (or
    /// the pool is empty). Largest size classes go first.
    fn evict_pool_for(&mut self, bytes: usize) {
        while self.free_bytes() < bytes && self.pool_bytes > 0 {
            let largest = self
                .pool
                .iter()
                .filter(|(_, v)| !v.is_empty())
                .max_by_key(|(&(w, h), _)| w * h)
                .map(|(&k, _)| k);
            let Some(key) = largest else { break };
            if let Some(tex) = self.pool.get_mut(&key).and_then(Vec::pop) {
                self.pool_bytes -= tex.bytes();
                trace::metrics::incr("gpu.pool.evictions", 1);
                trace::instant(
                    "gpu.pool",
                    "evict",
                    &[("bytes", ArgValue::U64(tex.bytes() as u64))],
                );
            }
            self.pool.retain(|_, v| !v.is_empty());
        }
    }

    /// Allocate a `w x h` RGBA32F texture. Released pooled textures are
    /// evicted as needed before the allocation is refused.
    pub fn alloc_texture(&mut self, width: usize, height: usize) -> Result<TextureId> {
        if width == 0
            || height == 0
            || width > self.profile.max_texture_side
            || height > self.profile.max_texture_side
        {
            return Err(GpuError::InvalidTextureSize {
                width,
                height,
                max_side: self.profile.max_texture_side,
            });
        }
        let bytes = width * height * 16;
        self.evict_pool_for(bytes);
        if bytes > self.free_bytes() {
            return Err(GpuError::OutOfVideoMemory {
                requested: bytes,
                available: self.free_bytes(),
            });
        }
        let id = self.next_id;
        self.next_id += 1;
        self.textures.insert(id, Texture2D::new(width, height));
        self.allocated_bytes += bytes;
        self.texture_allocs += 1;
        trace::metrics::incr("gpu.pool.allocs", 1);
        trace::instant(
            "gpu.pool",
            "alloc",
            &[("bytes", ArgValue::U64(bytes as u64))],
        );
        trace::counter("gpu.allocated_bytes", self.allocated_bytes as f64);
        Ok(TextureId(id))
    }

    /// Allocate a `w x h` texture, preferring a released pooled texture of
    /// the same size class. Reused textures are explicitly zero-filled and
    /// reset to the default address mode, so a pooled allocation is
    /// indistinguishable from a fresh one (pipelines may rely on
    /// zero-initialised accumulators).
    pub fn alloc_pooled(&mut self, width: usize, height: usize) -> Result<TextureId> {
        self.alloc_pooled_inner(width, height, true)
    }

    /// [`Gpu::alloc_pooled`] without the zero-fill on reuse. Only sound
    /// when the caller statically proves every texel is overwritten before
    /// it is read — which the render-graph compiler does for transient
    /// textures whose producer pass draws a full-target quad. Address mode
    /// is still reset, so the only observable difference from
    /// [`Gpu::alloc_pooled`] is the skipped clear.
    pub fn alloc_pooled_uninit(&mut self, width: usize, height: usize) -> Result<TextureId> {
        self.alloc_pooled_inner(width, height, false)
    }

    fn alloc_pooled_inner(
        &mut self,
        width: usize,
        height: usize,
        zero_fill: bool,
    ) -> Result<TextureId> {
        let recycled = self.pool.get_mut(&(width, height)).and_then(Vec::pop);
        match recycled {
            Some(mut tex) => {
                self.pool.retain(|_, v| !v.is_empty());
                self.pool_bytes -= tex.bytes();
                if zero_fill {
                    for t in tex.texels_mut() {
                        *t = [0.0; 4];
                    }
                } else {
                    self.zero_fill_skips += 1;
                    trace::metrics::incr("gpu.pool.zero_fill_skips", 1);
                }
                tex.set_address_mode(AddressMode::ClampToEdge);
                self.allocated_bytes += tex.bytes();
                let id = self.next_id;
                self.next_id += 1;
                self.textures.insert(id, tex);
                self.pool_hits += 1;
                trace::metrics::incr("gpu.pool.hits", 1);
                trace::instant("gpu.pool", "pool_hit", &[]);
                trace::counter("gpu.pool_bytes", self.pool_bytes as f64);
                Ok(TextureId(id))
            }
            None => self.alloc_texture(width, height),
        }
    }

    /// Release a texture into the pool for later [`Gpu::alloc_pooled`]
    /// reuse. The texture stays resident in video memory until reused,
    /// evicted by an allocation under pressure, or [`Gpu::drain_pool`]ed.
    pub fn release_pooled(&mut self, id: TextureId) -> Result<()> {
        match self.textures.remove(&id.0) {
            Some(tex) => {
                self.allocated_bytes -= tex.bytes();
                self.pool_bytes += tex.bytes();
                self.pool
                    .entry((tex.width(), tex.height()))
                    .or_default()
                    .push(tex);
                trace::instant("gpu.pool", "release", &[]);
                trace::counter("gpu.pool_bytes", self.pool_bytes as f64);
                Ok(())
            }
            None => Err(GpuError::InvalidTexture { id: id.0 }),
        }
    }

    /// Drop every released pooled texture, returning the bytes freed.
    pub fn drain_pool(&mut self) -> usize {
        let freed = self.pool_bytes;
        self.pool.clear();
        self.pool_bytes = 0;
        trace::instant(
            "gpu.pool",
            "drain",
            &[("bytes", ArgValue::U64(freed as u64))],
        );
        trace::counter("gpu.pool_bytes", 0.0);
        freed
    }

    /// Free a texture.
    pub fn free_texture(&mut self, id: TextureId) -> Result<()> {
        match self.textures.remove(&id.0) {
            Some(t) => {
                self.allocated_bytes -= t.bytes();
                Ok(())
            }
            None => Err(GpuError::InvalidTexture { id: id.0 }),
        }
    }

    /// Borrow a texture.
    pub fn texture(&self, id: TextureId) -> Result<&Texture2D> {
        self.textures
            .get(&id.0)
            .ok_or(GpuError::InvalidTexture { id: id.0 })
    }

    /// Set a texture's addressing mode.
    pub fn set_address_mode(&mut self, id: TextureId, mode: AddressMode) -> Result<()> {
        self.textures
            .get_mut(&id.0)
            .ok_or(GpuError::InvalidTexture { id: id.0 })?
            .set_address_mode(mode);
        Ok(())
    }

    /// Upload flat f32 data (4 per texel) host → device. Counts bus bytes.
    pub fn upload(&mut self, id: TextureId, data: &[f32]) -> Result<()> {
        let tex = self
            .textures
            .get_mut(&id.0)
            .ok_or(GpuError::InvalidTexture { id: id.0 })?;
        let expected = tex.width() * tex.height() * 4;
        if data.len() != expected {
            return Err(GpuError::SizeMismatch {
                expected,
                actual: data.len(),
            });
        }
        let bytes = (data.len() * 4) as u64;
        let _span = trace::span_with("gpu.xfer", "upload", &[("bytes", ArgValue::U64(bytes))]);
        let start = Instant::now();
        for (t, c) in tex.texels_mut().iter_mut().zip(data.chunks_exact(4)) {
            *t = [c[0], c[1], c[2], c[3]];
        }
        trace::metrics::observe("gpu.upload_wall", start.elapsed());
        self.stats.bytes_uploaded += bytes;
        Ok(())
    }

    /// Download a texture's contents device → host as flat f32 data.
    pub fn download(&mut self, id: TextureId) -> Result<Vec<f32>> {
        let tex = self
            .textures
            .get(&id.0)
            .ok_or(GpuError::InvalidTexture { id: id.0 })?;
        let _span = trace::span_with(
            "gpu.xfer",
            "download",
            &[(
                "bytes",
                ArgValue::U64((tex.width() * tex.height() * 16) as u64),
            )],
        );
        let start = Instant::now();
        let data = tex.to_flat();
        trace::metrics::observe("gpu.download_wall", start.elapsed());
        self.stats.bytes_downloaded += (data.len() * 4) as u64;
        Ok(data)
    }

    /// Download into a caller-owned buffer (cleared and refilled), avoiding
    /// a fresh allocation per readback. Counts the same bus bytes as
    /// [`Gpu::download`].
    pub fn download_into(&mut self, id: TextureId, out: &mut Vec<f32>) -> Result<()> {
        let tex = self
            .textures
            .get(&id.0)
            .ok_or(GpuError::InvalidTexture { id: id.0 })?;
        let _span = trace::span_with(
            "gpu.xfer",
            "download",
            &[(
                "bytes",
                ArgValue::U64((tex.width() * tex.height() * 16) as u64),
            )],
        );
        let start = Instant::now();
        out.clear();
        out.reserve(tex.width() * tex.height() * 4);
        for t in tex.texels() {
            out.extend_from_slice(t);
        }
        trace::metrics::observe("gpu.download_wall", start.elapsed());
        self.stats.bytes_downloaded += (out.len() * 4) as u64;
        Ok(())
    }

    fn gather_inputs(&self, inputs: &[TextureId], target: TextureId) -> Result<Vec<&Texture2D>> {
        if inputs.contains(&target) {
            return Err(GpuError::InvalidPass {
                message: "render target cannot also be bound as an input".into(),
            });
        }
        inputs.iter().map(|&id| self.texture(id)).collect()
    }

    /// Execute an assembled fragment program over `quad` (default: the full
    /// target), writing output `O0` to `target`.
    ///
    /// `inputs[i]` binds sampler `texI`; `texcoords[i]` defines coordinate
    /// set `Ti`; `constants` override the program's `DEF`s.
    ///
    /// The program is statically verified against this device's profile and
    /// the pass bindings before any fragment is shaded; a program with
    /// verification errors is rejected with [`GpuError::VerifyError`].
    pub fn run_pass(
        &mut self,
        program: &Program,
        inputs: &[TextureId],
        constants: &[(u8, [f32; 4])],
        texcoords: &[TexCoordSet],
        target: TextureId,
        quad: Option<Quad>,
    ) -> Result<PassStats> {
        let bindings = verify::PassBindings {
            samplers: inputs.len(),
            texcoord_sets: texcoords.len(),
            constants: constants.iter().map(|&(idx, _)| idx).collect(),
            // run_pass resolves only O0 to the target texture.
            outputs_read: [true, false, false, false],
        };
        // Dataflow verification depends only on the program text and the
        // bindings, so a (program, bindings) pair proven clean once on this
        // device stays clean; repeat passes skip straight to shading.
        // Failures are never cached — the error path re-verifies so the
        // diagnostics stay fresh.
        let asm = program.to_asm();
        let key = VerifyKey {
            program: asm.clone(),
            bindings: bindings.clone(),
        };
        if self.verify_cache.contains(&key) {
            self.verify_cache_hits += 1;
            trace::metrics::incr("gpu.verify.cache_hits", 1);
        } else {
            self.verify_runs += 1;
            trace::metrics::incr("gpu.verify.runs", 1);
            let diagnostics = verify::verify(program, &self.profile, Some(&key.bindings));
            if verify::has_errors(&diagnostics) {
                return Err(GpuError::VerifyError {
                    program: program.name.clone(),
                    diagnostics,
                });
            }
            self.verify_cache.insert(key);
        }
        // Lower once per (program, constants) bind; repeat passes shade
        // straight from the cached pre-decoded form.
        let lowered = self.lowered_for(&asm, program, constants, &bindings);
        let input_refs = self.gather_inputs(inputs, target)?;
        let tgt = self.texture(target)?;
        let (tw, th) = (tgt.width(), tgt.height());
        let quad = quad.unwrap_or(Quad::full(tw, th));
        if quad.x0 + quad.width > tw || quad.y0 + quad.height > th {
            return Err(GpuError::InvalidPass {
                message: format!(
                    "quad {}x{}+{}+{} exceeds target {}x{}",
                    quad.width, quad.height, quad.x0, quad.y0, tw, th
                ),
            });
        }
        let _pass_span = trace::span_with(
            "gpu.pass",
            &program.name,
            &[
                ("fragments", ArgValue::U64(quad.fragments() as u64)),
                ("tiles", ArgValue::U64(quad.tile_count() as u64)),
            ],
        );
        let pass_start = Instant::now();
        // Shade the quad into a scratch buffer as independent tiles, one
        // simulated fragment pipe (with its own cache model) per tile. The
        // batched executor shades a whole tile per call over SoA registers;
        // the scalar per-fragment loop stays as the bit-exactness oracle
        // (`GPU_SIM_BATCH=0`).
        let batch = self.batch_enabled;
        let mut out = vec![[0.0f32; 4]; quad.fragments()];
        let tile_counts = shade_tiled(
            &mut out,
            &quad,
            self.cache_model,
            |x0, y0, mut rows, mut cache| {
                if batch {
                    // Interpolate coordinate sets straight into the
                    // executor's SoA registers and let it write the row
                    // segments directly — no per-fragment input gather or
                    // color scatter buffers.
                    return interp::execute_lowered_batch_tile(
                        &lowered,
                        texcoords,
                        x0,
                        y0,
                        tw,
                        th,
                        &mut rows,
                        &input_refs,
                        cache,
                    );
                }
                let (mut instr, mut fetches) = (0u64, 0u64);
                for (ri, seg) in rows.iter_mut().enumerate() {
                    let y = y0 + ri;
                    for (ci, slot) in seg.iter_mut().enumerate() {
                        let fin: FragmentInput = fragment_input(texcoords, x0 + ci, y, tw, th);
                        let r = interp::execute_lowered(
                            &lowered,
                            &fin,
                            &input_refs,
                            cache.as_deref_mut(),
                        );
                        instr += r.instructions;
                        fetches += r.texel_fetches;
                        *slot = r.colors[0];
                    }
                }
                (instr, fetches)
            },
        );

        // Resolve to the framebuffer.
        let tgt = self
            .textures
            .get_mut(&target.0)
            .expect("target validated above");
        resolve_to_target(tgt, &quad, &out);

        let mut pass = PassStats {
            fragments: quad.fragments() as u64,
            bytes_written: (quad.fragments() * 16) as u64,
            passes: 1,
            tiles: quad.tile_count() as u64,
            ..PassStats::default()
        };
        // Deterministic merge: per-tile counters sum in tile order, never
        // in scheduling order.
        for c in &tile_counts {
            c.merge_into(&mut pass);
        }
        trace::metrics::observe("gpu.pass_wall", pass_start.elapsed());
        self.stats.add(&pass);
        Ok(pass)
    }

    /// Execute a closure kernel over `quad` (default: full target).
    ///
    /// `instr_per_fragment` declares the SIMD4 instruction cost the
    /// equivalent fragment program would incur (used by the timing model);
    /// texel fetches are counted exactly through the [`Fetcher`].
    pub fn run_closure_pass<F>(
        &mut self,
        inputs: &[TextureId],
        target: TextureId,
        instr_per_fragment: u64,
        quad: Option<Quad>,
        kernel: F,
    ) -> Result<PassStats>
    where
        F: Fn(&Fetcher<'_>, usize, usize) -> Texel + Sync,
    {
        // Closure kernels have no program text to analyse, but the declared
        // cost is still subject to the profile's program-length limit.
        if instr_per_fragment as usize > self.profile.max_program_instrs {
            return Err(GpuError::VerifyError {
                program: "<closure>".into(),
                diagnostics: vec![verify::Diagnostic {
                    kind: verify::DiagKind::TooManyInstructions,
                    severity: verify::Severity::Error,
                    line: 0,
                    message: format!(
                        "closure kernel declares {instr_per_fragment} instructions/fragment; \
                         {} allows {}",
                        self.profile.name, self.profile.max_program_instrs
                    ),
                }],
            });
        }
        let input_refs = self.gather_inputs(inputs, target)?;
        let tgt = self.texture(target)?;
        let (tw, th) = (tgt.width(), tgt.height());
        let quad = quad.unwrap_or(Quad::full(tw, th));
        if quad.x0 + quad.width > tw || quad.y0 + quad.height > th {
            return Err(GpuError::InvalidPass {
                message: "quad exceeds target".into(),
            });
        }
        let _pass_span = trace::span_with(
            "gpu.pass",
            "<closure>",
            &[
                ("fragments", ArgValue::U64(quad.fragments() as u64)),
                ("tiles", ArgValue::U64(quad.tile_count() as u64)),
            ],
        );
        let pass_start = Instant::now();
        let mut out = vec![[0.0f32; 4]; quad.fragments()];
        let tile_counts = shade_tiled(
            &mut out,
            &quad,
            self.cache_model,
            |x0, y0, mut rows, cache| {
                let fetcher = Fetcher::new(&input_refs, cache);
                for (ri, seg) in rows.iter_mut().enumerate() {
                    let y = y0 + ri;
                    for (ci, slot) in seg.iter_mut().enumerate() {
                        *slot = kernel(&fetcher, x0 + ci, y);
                    }
                }
                (0, fetcher.take_count())
            },
        );

        let tgt = self
            .textures
            .get_mut(&target.0)
            .expect("target validated above");
        resolve_to_target(tgt, &quad, &out);

        let mut pass = PassStats {
            fragments: quad.fragments() as u64,
            // The declared equivalent-program cost, not a measured count.
            instructions: quad.fragments() as u64 * instr_per_fragment,
            bytes_written: (quad.fragments() * 16) as u64,
            passes: 1,
            tiles: quad.tile_count() as u64,
            ..PassStats::default()
        };
        // Tile instruction counters are zero here (the cost above is the
        // declared equivalent-program cost), so the merge adds fetches and
        // cache traffic only.
        for c in &tile_counts {
            c.merge_into(&mut pass);
        }
        trace::metrics::observe("gpu.pass_wall", pass_start.elapsed());
        self.stats.add(&pass);
        Ok(pass)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    fn small_gpu() -> Gpu {
        Gpu::new(GpuProfile::fx5950_ultra())
    }

    #[test]
    fn texture_lifecycle_and_memory_accounting() {
        let mut gpu = small_gpu();
        let total = gpu.free_bytes();
        let t = gpu.alloc_texture(64, 32).unwrap();
        assert_eq!(gpu.allocated_bytes(), 64 * 32 * 16);
        assert_eq!(gpu.free_bytes(), total - 64 * 32 * 16);
        gpu.free_texture(t).unwrap();
        assert_eq!(gpu.free_bytes(), total);
        assert!(gpu.free_texture(t).is_err());
        assert!(gpu.texture(t).is_err());
    }

    #[test]
    fn allocation_limits_enforced() {
        let mut gpu = small_gpu();
        assert!(matches!(
            gpu.alloc_texture(0, 4),
            Err(GpuError::InvalidTextureSize { .. })
        ));
        assert!(matches!(
            gpu.alloc_texture(5000, 4),
            Err(GpuError::InvalidTextureSize { .. })
        ));
        // 256 MiB budget: a 4096x4096 RGBA32F texture (256 MiB) exactly fits;
        // two cannot.
        let t = gpu.alloc_texture(4096, 4096).unwrap();
        assert!(matches!(
            gpu.alloc_texture(4096, 4096),
            Err(GpuError::OutOfVideoMemory { .. })
        ));
        gpu.free_texture(t).unwrap();
    }

    #[test]
    fn upload_download_round_trip_counts_bytes() {
        let mut gpu = small_gpu();
        let t = gpu.alloc_texture(2, 2).unwrap();
        let data: Vec<f32> = (0..16).map(|i| i as f32).collect();
        gpu.upload(t, &data).unwrap();
        let back = gpu.download(t).unwrap();
        assert_eq!(back, data);
        let s = gpu.stats();
        assert_eq!(s.bytes_uploaded, 64);
        assert_eq!(s.bytes_downloaded, 64);
        assert!(gpu.upload(t, &data[..8]).is_err());
    }

    #[test]
    fn isa_pass_copies_texture() {
        let mut gpu = small_gpu();
        let src = gpu.alloc_texture(4, 4).unwrap();
        let dst = gpu.alloc_texture(4, 4).unwrap();
        let data: Vec<f32> = (0..4 * 4 * 4).map(|i| i as f32).collect();
        gpu.upload(src, &data).unwrap();
        let prog = assemble("!!copy\nTEX R0, T0, tex0\nMOV OC, R0").unwrap();
        let stats = gpu
            .run_pass(&prog, &[src], &[], &[TexCoordSet::identity()], dst, None)
            .unwrap();
        assert_eq!(gpu.download(dst).unwrap(), data);
        assert_eq!(stats.fragments, 16);
        // The optimizer coalesces `TEX R0` + `MOV OC, R0` into `TEX OC`,
        // so each fragment shades 1 instruction instead of the written 2.
        assert_eq!(stats.instructions, 16);
        assert_eq!(stats.texel_fetches, 16);
        assert_eq!(stats.bytes_written, 256);
        assert_eq!(stats.passes, 1);
        assert_eq!(gpu.opt_runs(), 1);
        let reports = gpu.opt_reports();
        assert_eq!(reports.len(), 1);
        assert_eq!((reports[0].before, reports[0].after), (2, 1));
    }

    #[test]
    fn gpu_sim_opt_0_shades_the_raw_program() {
        let mut gpu = small_gpu();
        gpu.set_optimizer(false);
        let src = gpu.alloc_texture(4, 4).unwrap();
        let dst = gpu.alloc_texture(4, 4).unwrap();
        let data: Vec<f32> = (0..4 * 4 * 4).map(|i| i as f32).collect();
        gpu.upload(src, &data).unwrap();
        let prog = assemble("!!copy\nTEX R0, T0, tex0\nMOV OC, R0").unwrap();
        let stats = gpu
            .run_pass(&prog, &[src], &[], &[TexCoordSet::identity()], dst, None)
            .unwrap();
        assert_eq!(gpu.download(dst).unwrap(), data);
        assert_eq!(stats.instructions, 32); // 2 per fragment, unoptimized
        assert_eq!(gpu.opt_runs(), 0);
        assert!(gpu.opt_reports().is_empty());
        // Re-enabling keys a distinct lowering: same program, new entry.
        gpu.set_optimizer(true);
        let stats = gpu
            .run_pass(&prog, &[src], &[], &[TexCoordSet::identity()], dst, None)
            .unwrap();
        assert_eq!(stats.instructions, 16);
        assert_eq!(gpu.lowerings(), 2);
        assert_eq!(gpu.lower_cache_hits(), 0);
    }

    #[test]
    fn gpu_sim_batch_0_matches_batched_passes_exactly() {
        // The same non-trivial pass on two devices, one shading through the
        // batched SoA executor and one through the per-fragment oracle:
        // texels AND every PassStats field must agree bit for bit. A 70x9
        // target exercises ragged tiles (partial chunks) on both axes.
        let run = |batch: bool| {
            let mut gpu = small_gpu();
            gpu.set_batch_execution(batch);
            let src = gpu.alloc_texture(70, 9).unwrap();
            let dst = gpu.alloc_texture(70, 9).unwrap();
            let data: Vec<f32> = (0..70 * 9 * 4)
                .map(|i| (i % 23) as f32 * 0.21 - 1.9)
                .collect();
            gpu.upload(src, &data).unwrap();
            let prog = assemble(
                "!!mix\nDEF C1, 0.25, -3, 1.5, 2\nTEX R0, T0, tex0\nTEX R1, T1, tex0\n\
                 MAD R2, R0, C1.wzxy, -R1\nLRP R3, C0.x, R0, R2\nDP3 R3.w, R3, C1\n\
                 MOV_SAT OC, R3",
            )
            .unwrap();
            let stats = gpu
                .run_pass(
                    &prog,
                    &[src],
                    &[(0, [0.4, 0.0, 0.0, 0.0])],
                    &[
                        TexCoordSet::identity(),
                        TexCoordSet::shifted_texels(1, -1, 70, 9),
                    ],
                    dst,
                    None,
                )
                .unwrap();
            (gpu.download(dst).unwrap(), stats)
        };
        let (batched, batched_stats) = run(true);
        let (scalar, scalar_stats) = run(false);
        assert_eq!(
            batched.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            scalar.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
        assert_eq!(batched_stats, scalar_stats);
    }

    #[test]
    fn batch_flag_keys_the_lowering_cache() {
        let mut gpu = small_gpu();
        let src = gpu.alloc_texture(4, 4).unwrap();
        let dst = gpu.alloc_texture(4, 4).unwrap();
        gpu.upload(src, &vec![0.5f32; 4 * 4 * 4]).unwrap();
        let prog = assemble("TEX R0, T0, tex0\nMOV OC, R0").unwrap();
        let sets = [TexCoordSet::identity()];
        gpu.run_pass(&prog, &[src], &[], &sets, dst, None).unwrap();
        assert_eq!(gpu.lowerings(), 1);
        // Toggling batching must miss the cache (the scheduled form
        // differs), then hit its own entry on repeat.
        gpu.set_batch_execution(!gpu.batch_execution_enabled());
        gpu.run_pass(&prog, &[src], &[], &sets, dst, None).unwrap();
        assert_eq!(gpu.lowerings(), 2);
        assert_eq!(gpu.lower_cache_hits(), 0);
        gpu.run_pass(&prog, &[src], &[], &sets, dst, None).unwrap();
        assert_eq!(gpu.lowerings(), 2);
        assert_eq!(gpu.lower_cache_hits(), 1);
    }

    #[test]
    fn closure_pass_matches_isa_pass() {
        let mut gpu = small_gpu();
        let src = gpu.alloc_texture(8, 8).unwrap();
        let a = gpu.alloc_texture(8, 8).unwrap();
        let b = gpu.alloc_texture(8, 8).unwrap();
        let data: Vec<f32> = (0..8 * 8 * 4).map(|i| (i % 17) as f32 * 0.5).collect();
        gpu.upload(src, &data).unwrap();

        // double = input + input, via ISA …
        let prog = assemble("TEX R0, T0, tex0\nADD OC, R0, R0").unwrap();
        gpu.run_pass(&prog, &[src], &[], &[TexCoordSet::identity()], a, None)
            .unwrap();
        // … and via closure.
        gpu.run_closure_pass(&[src], b, 2, None, |f, x, y| {
            let t = f.fetch(0, x as i64, y as i64);
            [t[0] * 2.0, t[1] * 2.0, t[2] * 2.0, t[3] * 2.0]
        })
        .unwrap();
        assert_eq!(gpu.download(a).unwrap(), gpu.download(b).unwrap());
    }

    #[test]
    fn target_cannot_be_input() {
        let mut gpu = small_gpu();
        let t = gpu.alloc_texture(4, 4).unwrap();
        let prog = assemble("TEX R0, T0, tex0\nMOV OC, R0").unwrap();
        let err = gpu
            .run_pass(&prog, &[t], &[], &[TexCoordSet::identity()], t, None)
            .unwrap_err();
        assert!(matches!(err, GpuError::InvalidPass { .. }));
    }

    #[test]
    fn missing_binding_is_reported() {
        let mut gpu = small_gpu();
        let dst = gpu.alloc_texture(2, 2).unwrap();
        let prog = assemble("TEX R0, T0, tex0\nMOV OC, R0").unwrap();
        let err = gpu.run_pass(&prog, &[], &[], &[], dst, None).unwrap_err();
        match err {
            GpuError::VerifyError { diagnostics, .. } => {
                let kinds: Vec<_> = diagnostics.iter().map(|d| d.kind).collect();
                assert!(kinds.contains(&crate::verify::DiagKind::UnboundSampler));
                assert!(kinds.contains(&crate::verify::DiagKind::UnboundTexCoord));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn verifier_rejects_uninitialized_reads_before_shading() {
        let mut gpu = small_gpu();
        let dst = gpu.alloc_texture(2, 2).unwrap();
        // R3 is never written: rejected before any fragment executes.
        let prog = assemble("MOV OC, R3").unwrap();
        let err = gpu.run_pass(&prog, &[], &[], &[], dst, None).unwrap_err();
        assert!(matches!(err, GpuError::VerifyError { .. }), "{err:?}");
        assert_eq!(gpu.stats().passes, 0, "no pass may have run");
    }

    #[test]
    fn closure_pass_instruction_budget_enforced() {
        let mut gpu = small_gpu();
        let dst = gpu.alloc_texture(2, 2).unwrap();
        let limit = gpu.profile().max_program_instrs as u64;
        let err = gpu
            .run_closure_pass(&[], dst, limit + 1, None, |_, _, _| [0.0; 4])
            .unwrap_err();
        assert!(matches!(err, GpuError::VerifyError { .. }), "{err:?}");
        assert!(gpu
            .run_closure_pass(&[], dst, limit, None, |_, _, _| [0.0; 4])
            .is_ok());
    }

    #[test]
    fn sub_quad_renders_only_its_rect() {
        let mut gpu = small_gpu();
        let dst = gpu.alloc_texture(4, 4).unwrap();
        let prog = assemble("DEF C0, 7, 7, 7, 7\nMOV OC, C0").unwrap();
        let quad = Quad {
            x0: 1,
            y0: 1,
            width: 2,
            height: 2,
        };
        let stats = gpu.run_pass(&prog, &[], &[], &[], dst, Some(quad)).unwrap();
        assert_eq!(stats.fragments, 4);
        let tex = gpu.texture(dst).unwrap();
        assert_eq!(tex.texel(1, 1), [7.0; 4]);
        assert_eq!(tex.texel(2, 2), [7.0; 4]);
        assert_eq!(tex.texel(0, 0), [0.0; 4]);
        assert_eq!(tex.texel(3, 3), [0.0; 4]);
        // Out-of-range quad rejected.
        let bad = Quad {
            x0: 3,
            y0: 3,
            width: 2,
            height: 2,
        };
        assert!(gpu.run_pass(&prog, &[], &[], &[], dst, Some(bad)).is_err());
    }

    #[test]
    fn shifted_texcoords_access_neighbours_with_clamping() {
        let mut gpu = small_gpu();
        let src = gpu.alloc_texture(3, 1).unwrap();
        let dst = gpu.alloc_texture(3, 1).unwrap();
        let data: Vec<f32> = [[1.0f32; 4], [2.0; 4], [3.0; 4]].concat();
        gpu.upload(src, &data).unwrap();
        // Shift left by one texel: dst[x] = src[x-1] with clamp.
        let prog = assemble("TEX R0, T0, tex0\nMOV OC, R0").unwrap();
        gpu.run_pass(
            &prog,
            &[src],
            &[],
            &[TexCoordSet::shifted_texels(-1, 0, 3, 1)],
            dst,
            None,
        )
        .unwrap();
        let out = gpu.download(dst).unwrap();
        assert_eq!(out[0], 1.0); // clamped
        assert_eq!(out[4], 1.0);
        assert_eq!(out[8], 2.0);
    }

    #[test]
    fn cache_counters_populate_when_enabled() {
        let mut gpu = small_gpu();
        let src = gpu.alloc_texture(16, 16).unwrap();
        let dst = gpu.alloc_texture(16, 16).unwrap();
        let prog = assemble("TEX R0, T0, tex0\nMOV OC, R0").unwrap();
        let stats = gpu
            .run_pass(&prog, &[src], &[], &[TexCoordSet::identity()], dst, None)
            .unwrap();
        assert_eq!(stats.cache_hits + stats.cache_misses, stats.texel_fetches);
        assert!(stats.cache_hit_rate() > 0.5, "{}", stats.cache_hit_rate());

        gpu.set_cache_model(false);
        let stats = gpu
            .run_pass(&prog, &[src], &[], &[TexCoordSet::identity()], dst, None)
            .unwrap();
        assert_eq!(stats.cache_hits + stats.cache_misses, 0);
    }

    #[test]
    fn pooled_allocation_recycles_and_zero_fills() {
        let mut gpu = small_gpu();
        let t = gpu.alloc_pooled(4, 4).unwrap();
        assert_eq!(gpu.texture_allocs(), 1);
        assert_eq!(gpu.pool_hits(), 0);
        let junk: Vec<f32> = (0..4 * 4 * 4).map(|i| i as f32 + 1.0).collect();
        gpu.upload(t, &junk).unwrap();
        gpu.set_address_mode(t, AddressMode::Repeat).unwrap();
        gpu.release_pooled(t).unwrap();
        assert_eq!(gpu.allocated_bytes(), 0);
        assert_eq!(gpu.pooled_bytes(), 4 * 4 * 16);
        assert!(gpu.texture(t).is_err(), "released handle must be dead");

        // Same size class: served from the pool, scrubbed back to defaults.
        let t2 = gpu.alloc_pooled(4, 4).unwrap();
        assert_eq!(gpu.texture_allocs(), 1, "no new allocation");
        assert_eq!(gpu.pool_hits(), 1);
        assert_eq!(gpu.pooled_bytes(), 0);
        let tex = gpu.texture(t2).unwrap();
        assert!(tex.texels().iter().all(|t| *t == [0.0; 4]));
        assert_eq!(tex.fetch(-5, 0), tex.fetch(0, 0), "mode reset to clamp");

        // Different size class: a genuine allocation.
        let t3 = gpu.alloc_pooled(8, 8).unwrap();
        assert_eq!(gpu.texture_allocs(), 2);
        assert_eq!(gpu.pool_hits(), 1);
        gpu.release_pooled(t2).unwrap();
        gpu.release_pooled(t3).unwrap();
        assert_eq!(gpu.drain_pool(), (4 * 4 + 8 * 8) * 16);
        assert_eq!(gpu.pooled_bytes(), 0);
        assert_eq!(gpu.allocated_bytes(), 0);
    }

    #[test]
    fn pool_evicts_under_memory_pressure() {
        // 256 MiB budget: pool a 4096x4096 (256 MiB) texture, then ask for a
        // different size class — the pooled texture must be evicted rather
        // than the allocation refused.
        let mut gpu = small_gpu();
        let big = gpu.alloc_pooled(4096, 4096).unwrap();
        gpu.release_pooled(big).unwrap();
        assert_eq!(gpu.free_bytes(), 0, "pooled bytes still occupy memory");
        let t = gpu.alloc_texture(2048, 2048).unwrap();
        assert_eq!(gpu.pooled_bytes(), 0, "pool evicted to make room");
        gpu.free_texture(t).unwrap();
    }

    #[test]
    fn verification_cache_skips_repeat_verifications() {
        let mut gpu = small_gpu();
        let src = gpu.alloc_texture(4, 4).unwrap();
        let dst = gpu.alloc_texture(4, 4).unwrap();
        let prog = assemble("TEX R0, T0, tex0\nMOV OC, R0").unwrap();
        for _ in 0..3 {
            gpu.run_pass(&prog, &[src], &[], &[TexCoordSet::identity()], dst, None)
                .unwrap();
        }
        assert_eq!(gpu.verifications(), 1, "one verification per program");
        assert_eq!(gpu.verify_cache_hits(), 2);

        // Different bindings are a different cache entry.
        let prog2 = assemble("DEF C0, 1, 1, 1, 1\nMOV OC, C0").unwrap();
        gpu.run_pass(&prog2, &[], &[], &[], dst, None).unwrap();
        gpu.run_pass(&prog2, &[], &[], &[], dst, None).unwrap();
        assert_eq!(gpu.verifications(), 2);
        assert_eq!(gpu.verify_cache_hits(), 3);
    }

    #[test]
    fn lowering_cache_reuses_programs_and_keys_on_constant_values() {
        let mut gpu = small_gpu();
        let dst = gpu.alloc_texture(4, 4).unwrap();
        let prog = assemble("MOV OC, C0").unwrap();
        for _ in 0..3 {
            gpu.run_pass(&prog, &[], &[(0, [1.0; 4])], &[], dst, None)
                .unwrap();
        }
        assert_eq!(gpu.lowerings(), 1, "one lowering per bind");
        assert_eq!(gpu.lower_cache_hits(), 2);
        // Same program text, different constant value: constants are folded
        // into the lowered form, so this is a distinct cache entry …
        gpu.run_pass(&prog, &[], &[(0, [2.0; 4])], &[], dst, None)
            .unwrap();
        assert_eq!(gpu.lowerings(), 2);
        // … that is itself reused.
        gpu.run_pass(&prog, &[], &[(0, [2.0; 4])], &[], dst, None)
            .unwrap();
        assert_eq!(gpu.lowerings(), 2);
        assert_eq!(gpu.lower_cache_hits(), 3);
        assert_eq!(gpu.texture(dst).unwrap().texel(0, 0), [2.0; 4]);
    }

    #[test]
    fn pass_stats_count_shading_tiles() {
        use crate::raster::{TILE_ROWS, TILE_W};
        let mut gpu = small_gpu();
        let small = gpu.alloc_texture(4, 4).unwrap();
        let prog = assemble("DEF C0, 1, 1, 1, 1\nMOV OC, C0").unwrap();
        let stats = gpu.run_pass(&prog, &[], &[], &[], small, None).unwrap();
        assert_eq!(stats.tiles, 1, "a 4x4 target is one tile");

        let wide = gpu
            .alloc_texture(2 * TILE_W + 1, 2 * TILE_ROWS + 1)
            .unwrap();
        let stats = gpu
            .run_closure_pass(&[], wide, 1, None, |_, x, y| [x as f32, y as f32, 0.0, 0.0])
            .unwrap();
        assert_eq!(stats.tiles, 9, "3 tile columns x 3 tile bands");
        assert_eq!(gpu.stats().tiles, 10, "tiles accumulate across passes");
        // The tiled write pattern must still cover every fragment.
        let tex = gpu.texture(wide).unwrap();
        assert_eq!(
            tex.texel(2 * TILE_W, 2 * TILE_ROWS),
            [(2 * TILE_W) as f32, (2 * TILE_ROWS) as f32, 0.0, 0.0]
        );
    }

    #[test]
    fn verification_failures_are_not_cached() {
        let mut gpu = small_gpu();
        let dst = gpu.alloc_texture(2, 2).unwrap();
        let bad = assemble("MOV OC, R3").unwrap();
        for _ in 0..2 {
            let err = gpu.run_pass(&bad, &[], &[], &[], dst, None).unwrap_err();
            assert!(matches!(err, GpuError::VerifyError { .. }));
        }
        assert_eq!(gpu.verifications(), 2, "errors re-verify every time");
        assert_eq!(gpu.verify_cache_hits(), 0);
    }

    #[test]
    fn border_fetches_generate_no_cache_traffic() {
        let mut gpu = small_gpu();
        let src = gpu.alloc_texture(4, 4).unwrap();
        let dst = gpu.alloc_texture(4, 4).unwrap();
        gpu.set_address_mode(src, AddressMode::ClampToBorder([0.0; 4]))
            .unwrap();
        // Every fetch lands outside the texture: the border colour is
        // returned without touching any texel, so the cache sees nothing.
        let stats = gpu
            .run_closure_pass(&[src], dst, 1, None, |f, x, y| {
                f.fetch(0, x as i64 + 100, y as i64)
            })
            .unwrap();
        assert_eq!(stats.texel_fetches, 16);
        assert_eq!(stats.cache_hits + stats.cache_misses, 0);
    }

    #[test]
    fn repeat_mode_wraps_cache_tags_to_the_same_texel() {
        let mut gpu = small_gpu();
        let src = gpu.alloc_texture(4, 4).unwrap();
        let dst = gpu.alloc_texture(4, 4).unwrap();
        gpu.set_address_mode(src, AddressMode::Repeat).unwrap();
        let in_range = gpu
            .run_closure_pass(&[src], dst, 1, None, |f, x, y| {
                f.fetch(0, x as i64, y as i64)
            })
            .unwrap();
        let wrapped = gpu
            .run_closure_pass(&[src], dst, 1, None, |f, x, y| {
                f.fetch(0, x as i64 + 4, y as i64 + 4)
            })
            .unwrap();
        // A whole-period shift resolves to identical texels, so the cache
        // behaviour must match the in-range pass exactly.
        assert_eq!(wrapped.cache_hits, in_range.cache_hits);
        assert_eq!(wrapped.cache_misses, in_range.cache_misses);
        assert_eq!(wrapped.cache_hits + wrapped.cache_misses, 16);
    }

    #[test]
    fn download_into_reuses_buffer_and_counts_bytes() {
        let mut gpu = small_gpu();
        let t = gpu.alloc_texture(2, 2).unwrap();
        let data: Vec<f32> = (0..16).map(|i| i as f32).collect();
        gpu.upload(t, &data).unwrap();
        let mut buf = vec![99.0; 3];
        gpu.download_into(t, &mut buf).unwrap();
        assert_eq!(buf, data);
        assert_eq!(gpu.stats().bytes_downloaded, 64);
        // Reuse: previous contents replaced, bytes counted again.
        gpu.download_into(t, &mut buf).unwrap();
        assert_eq!(buf, data);
        assert_eq!(gpu.stats().bytes_downloaded, 128);
        assert!(gpu.download_into(TextureId(999), &mut buf).is_err());
    }

    #[test]
    fn stats_accumulate_and_reset() {
        let mut gpu = small_gpu();
        let dst = gpu.alloc_texture(2, 2).unwrap();
        let prog = assemble("DEF C0, 1, 1, 1, 1\nMOV OC, C0").unwrap();
        gpu.run_pass(&prog, &[], &[], &[], dst, None).unwrap();
        gpu.run_pass(&prog, &[], &[], &[], dst, None).unwrap();
        assert_eq!(gpu.stats().passes, 2);
        assert_eq!(gpu.stats().fragments, 8);
        gpu.reset_stats();
        assert_eq!(gpu.stats(), PassStats::default());
    }
}
