//! The analytic work model behind Tables 4–5 must agree exactly with
//! executed-simulation counters — the deterministic half of the timing
//! model's credibility.

use hyperspec::amc::perf::{self, PredictConfig};
use hyperspec::amc::pipeline::{GpuAmc, KernelMode};
use hyperspec::gpu::device::Compiler;
use hyperspec::gpu::timing;
use hyperspec::prelude::*;

fn cube(w: usize, h: usize, bands: usize) -> Cube {
    Cube::from_fn(CubeDims::new(w, h, bands), Interleave::Bip, |x, y, b| {
        1.0 + ((x * 7 + y * 13 + b * 3) % 31) as f32
    })
    .unwrap()
}

#[test]
fn analytic_counts_match_execution_for_multiple_shapes() {
    for (w, h, bands) in [(8, 8, 4), (17, 9, 10), (12, 20, 7)] {
        let c = cube(w, h, bands);
        let se = StructuringElement::square(3).unwrap();
        let mut gpu = Gpu::new(GpuProfile::geforce_7800gtx());
        let out = GpuAmc::new(se.clone(), KernelMode::Closure)
            .run_chunk(&mut gpu, &c)
            .unwrap();
        let pred = perf::predict_chunk_stats(w, h, bands, &se, &PredictConfig::default());
        assert_eq!(pred.passes, out.stats.passes, "{w}x{h}x{bands} passes");
        assert_eq!(pred.fragments, out.stats.fragments);
        assert_eq!(pred.instructions, out.stats.instructions);
        assert_eq!(pred.texel_fetches, out.stats.texel_fetches);
        assert_eq!(pred.bytes_written, out.stats.bytes_written);
        assert_eq!(pred.bytes_uploaded, out.stats.bytes_uploaded);
        assert_eq!(pred.bytes_downloaded, out.stats.bytes_downloaded);
    }
}

#[test]
fn analytic_counts_match_execution_for_5x5_se() {
    let c = cube(14, 14, 6);
    let se = StructuringElement::square(5).unwrap();
    let mut gpu = Gpu::new(GpuProfile::geforce_7800gtx());
    let out = GpuAmc::new(se.clone(), KernelMode::Closure)
        .run_chunk(&mut gpu, &c)
        .unwrap();
    let pred = perf::predict_chunk_stats(14, 14, 6, &se, &PredictConfig::default());
    assert_eq!(pred.instructions, out.stats.instructions);
    assert_eq!(pred.texel_fetches, out.stats.texel_fetches);
}

#[test]
fn chunked_prediction_matches_chunked_execution() {
    let c = cube(10, 24, 5);
    let se = StructuringElement::square(3).unwrap();
    let chunking = Chunking::new(6, 2);
    let mut gpu = Gpu::new(GpuProfile::geforce_7800gtx());
    let mut total = hyperspec::gpu::counters::PassStats::default();
    let amc = GpuAmc::new(se.clone(), KernelMode::Closure);
    for chunk in c.chunks(chunking) {
        total.add(&amc.run_chunk(&mut gpu, &chunk.cube).unwrap().stats);
    }
    let pred = perf::predict_stats(c.dims(), &se, chunking, &PredictConfig::default());
    assert_eq!(pred.instructions, total.instructions);
    assert_eq!(pred.texel_fetches, total.texel_fetches);
    assert_eq!(pred.passes, total.passes);
}

#[test]
fn table_shape_headlines_hold() {
    // The four headline shapes of the paper's evaluation, asserted from the
    // model that regenerates Tables 4-5 and Fig. 6.
    let se = StructuringElement::square(3).unwrap();
    let cfg = PredictConfig::default();
    let sizes = perf::paper_image_sizes();
    let p4 = hyperspec::gpu::device::CpuProfile::pentium4_northwood();

    let mut speedups = Vec::new();
    let mut gains = Vec::new();
    for (_, dims) in &sizes {
        let work = hyperspec::amc::cpu::amc_work(*dims, se.len());
        let cpu_ms = timing::cpu_time_ms(&work, &p4, Compiler::Gcc);
        let (fx, _) =
            perf::predict_gpu_time(*dims, &se, &GpuProfile::fx5950_ultra(), &cfg).unwrap();
        let (g70, _) =
            perf::predict_gpu_time(*dims, &se, &GpuProfile::geforce_7800gtx(), &cfg).unwrap();
        speedups.push(cpu_ms / g70.kernel_ms());
        gains.push(fx.kernel_ms() / g70.kernel_ms());
    }
    // 1. GPU >> CPU, near the paper's "close to 55" with gcc.
    for s in &speedups {
        assert!(*s > 35.0 && *s < 80.0, "speedup {s}");
    }
    // 2. Speedup roughly constant across sizes (streaming algorithm).
    let (lo, hi) = speedups
        .iter()
        .fold((f64::MAX, f64::MIN), |(l, h), &v| (l.min(v), h.max(v)));
    assert!(hi / lo < 1.2, "speedup spread {lo}..{hi}");
    // 3. GPU generation gain near the paper's ~4.4x.
    for g in &gains {
        assert!(*g > 3.5 && *g < 5.5, "generation gain {g}");
    }
    // 4. Linear scaling in image size.
    let (t0, _) =
        perf::predict_gpu_time(sizes[0].1, &se, &GpuProfile::geforce_7800gtx(), &cfg).unwrap();
    let (t5, _) =
        perf::predict_gpu_time(sizes[5].1, &se, &GpuProfile::geforce_7800gtx(), &cfg).unwrap();
    let ratio = t5.kernel_ms() / t0.kernel_ms();
    let size_ratio = sizes[5].1.pixels() as f64 / sizes[0].1.pixels() as f64;
    assert!(
        (ratio / size_ratio - 1.0).abs() < 0.1,
        "scaling {ratio} vs {size_ratio}"
    );
}

#[test]
fn cache_ablation_shifts_modeled_memory_time() {
    // Disabling the texture-cache model charges every fetch to DRAM: the
    // modeled memory time must increase while functional output is
    // unchanged.
    let c = cube(16, 16, 8);
    let se = StructuringElement::square(3).unwrap();
    let amc = GpuAmc::new(se, KernelMode::Closure);
    let mut with = Gpu::new(GpuProfile::fx5950_ultra());
    let out_with = amc.run_chunk(&mut with, &c).unwrap();
    let mut without = Gpu::new(GpuProfile::fx5950_ultra());
    without.set_cache_model(false);
    let out_without = amc.run_chunk(&mut without, &c).unwrap();
    assert_eq!(out_with.mei.scores, out_without.mei.scores);
    let t_with = timing::gpu_time(&out_with.stats, &GpuProfile::fx5950_ultra());
    let t_without = timing::gpu_time(&out_without.stats, &GpuProfile::fx5950_ultra());
    assert!(t_without.memory_s > t_with.memory_s);
}
