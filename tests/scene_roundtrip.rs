//! Scene generation ↔ ENVI I/O ↔ rendering, across crate boundaries.

use hyperspec::prelude::*;
use hyperspec::scene::{envi, library::indian_pines_classes, render};

fn small_scene(seed: u64) -> SyntheticScene {
    let classes: Vec<_> = indian_pines_classes().into_iter().take(6).collect();
    let cfg = SceneConfig {
        width: 32,
        height: 24,
        bands: 12,
        field_width: 8,
        field_height: 8,
        seed,
        noise_fraction: 0.002,
        mixing_halfwidth: 0.3,
        sensor_scale: 4000.0,
        purity_boost: 0.10,
    };
    generate(&classes, &cfg)
}

#[test]
fn scene_survives_envi_round_trip() {
    let scene = small_scene(4);
    let dir = std::env::temp_dir().join(format!("hsi_rt_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("scene.raw");
    envi::write_cube(&path, &scene.cube, "synthetic scene").unwrap();
    let back = envi::read_cube(&path).unwrap();
    assert_eq!(back, scene.cube);
    // The reloaded cube classifies identically.
    let amc = AmcClassifier::new(AmcConfig::paper_default(6));
    let a = amc.classify(&scene.cube).unwrap();
    let b = amc.classify(&back).unwrap();
    assert_eq!(a.labels, b.labels);
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn renders_have_correct_sizes() {
    let scene = small_scene(9);
    let dims = scene.cube.dims();
    let pgm = render::band_to_pgm(&scene.cube, 3);
    // P5 header + pixels.
    assert!(pgm.starts_with(format!("P5\n{} {}\n255\n", dims.width, dims.height).as_bytes()));
    assert_eq!(
        pgm.len(),
        format!("P5\n{} {}\n255\n", dims.width, dims.height).len() + dims.pixels()
    );
    let ppm = render::labels_to_ppm(&scene.ground_truth, dims.width, dims.height);
    assert_eq!(
        ppm.len(),
        format!("P6\n{} {}\n255\n", dims.width, dims.height).len() + dims.pixels() * 3
    );
}

#[test]
fn ground_truth_is_consistent_with_signatures() {
    // Pixels must on average be closer (by SID) to their own class
    // signature than to a random other signature.
    let scene = small_scene(13);
    let dims = scene.cube.dims();
    let mut own = 0.0f64;
    let mut other = 0.0f64;
    let mut n = 0u32;
    for y in 0..dims.height {
        for x in 0..dims.width {
            let l = scene.label(x, y) as usize;
            let px = scene.cube.pixel(x, y);
            own += hyperspec::hsi::spectral::sid(&px, &scene.signatures[l]) as f64;
            other += hyperspec::hsi::spectral::sid(
                &px,
                &scene.signatures[(l + 3) % scene.signatures.len()],
            ) as f64;
            n += 1;
        }
    }
    let (mean_own, mean_other) = (own / n as f64, other / n as f64);
    assert!(mean_own < mean_other, "own {mean_own} other {mean_other}");
}
