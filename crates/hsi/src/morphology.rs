//! Extended mathematical morphology for hyperspectral cubes.
//!
//! Implements the paper's eqs. 1, 5 and 6. Reading eq. 1 literally, the
//! cumulative distance is a per-pixel **field**
//!
//! ```text
//! D_B[f(x,y)] = Σ_{(i,j) ∈ B} SID(f(x,y), f(x+i, y+j))
//! ```
//!
//! and extended erosion/dilation (eqs. 5–6) select the SE neighbour whose
//! *field value* is minimal/maximal:
//!
//! ```text
//! (f Θ B)(x,y) = argmin_{(i,j)} D_B[f(x+i, y+j)]
//! (f ⊕ B)(x,y) = argmax_{(i,j)} D_B[f(x+i, y+j)]
//! ```
//!
//! This is the variant whose complexity matches the paper's stated
//! `O(p_f · p_B · N)` and whose `accum_k` streams (one cumulative stream per
//! SE neighbour, Section 3.2) the GPU pipeline materialises. The
//! morphological-endmember literature also uses a *window-local* variant in
//! which `D` is recomputed relative to each window; it costs a factor `p_B`
//! more and is provided as [`mei_window_local`] for ablation.
//!
//! The per-pixel **MEI** score (step 2 of AMC) is the SID between the
//! dilation and erosion pixels of each neighbourhood.
//!
//! Borders use clamp-to-edge semantics, matching the `CLAMP_TO_EDGE` texture
//! addressing the GPU implementation inherits from the graphics pipeline.

use crate::cube::Cube;
use crate::error::{HsiError, Result};
use crate::spectral::SpectralDistance;
use rayon::prelude::*;

/// A flat (unweighted) structuring element: a boolean mask with odd extent
/// and an anchor at its centre.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructuringElement {
    width: usize,
    height: usize,
    mask: Vec<bool>,
}

impl StructuringElement {
    /// A full square SE of side `side` (the paper uses 3×3).
    pub fn square(side: usize) -> Result<Self> {
        Self::from_mask(side, side, vec![true; side * side])
    }

    /// A full rectangular SE.
    pub fn rect(width: usize, height: usize) -> Result<Self> {
        Self::from_mask(width, height, vec![true; width * height])
    }

    /// A discrete disk of the given radius (side `2r + 1`).
    pub fn disk(radius: usize) -> Result<Self> {
        let side = 2 * radius + 1;
        let r2 = (radius * radius) as i64;
        let mut mask = vec![false; side * side];
        for y in 0..side {
            for x in 0..side {
                let dx = x as i64 - radius as i64;
                let dy = y as i64 - radius as i64;
                mask[y * side + x] = dx * dx + dy * dy <= r2;
            }
        }
        Self::from_mask(side, side, mask)
    }

    /// Build from an explicit mask (row-major, `width * height` entries).
    pub fn from_mask(width: usize, height: usize, mask: Vec<bool>) -> Result<Self> {
        if width == 0 || height == 0 {
            return Err(HsiError::InvalidStructuringElement {
                reason: "zero-sized".into(),
            });
        }
        if width.is_multiple_of(2) || height.is_multiple_of(2) {
            return Err(HsiError::InvalidStructuringElement {
                reason: format!("extent {width}x{height} must be odd so the anchor is central"),
            });
        }
        if mask.len() != width * height {
            return Err(HsiError::InvalidStructuringElement {
                reason: format!("mask length {} != {}x{}", mask.len(), width, height),
            });
        }
        if !mask[(height / 2) * width + width / 2] {
            return Err(HsiError::InvalidStructuringElement {
                reason: "anchor (centre) must be active".into(),
            });
        }
        Ok(Self {
            width,
            height,
            mask,
        })
    }

    /// SE extent.
    pub fn extent(&self) -> (usize, usize) {
        (self.width, self.height)
    }

    /// Horizontal radius (`width / 2`).
    pub fn radius_x(&self) -> usize {
        self.width / 2
    }

    /// Vertical radius (`height / 2`) — the chunk halo the SE requires.
    ///
    /// Note the *field* semantics need a halo of `2 * radius_y` lines for
    /// chunked processing to be exact: the field at a neighbour one radius
    /// away itself looks one radius further.
    pub fn radius_y(&self) -> usize {
        self.height / 2
    }

    /// Number of active neighbours (the paper's `p_B`).
    pub fn len(&self) -> usize {
        self.mask.iter().filter(|&&m| m).count()
    }

    /// True if the SE has no active cells (cannot happen via constructors).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Active offsets `(dx, dy)` relative to the anchor, row-major order.
    ///
    /// The order is deterministic: it defines the neighbour indices the GPU
    /// pipeline's `accum_k` streams use, so CPU and GPU paths agree on which
    /// "neighbour 0" is.
    pub fn offsets(&self) -> Vec<(i32, i32)> {
        let rx = self.radius_x() as i32;
        let ry = self.radius_y() as i32;
        let mut out = Vec::with_capacity(self.len());
        for y in 0..self.height {
            for x in 0..self.width {
                if self.mask[y * self.width + x] {
                    out.push((x as i32 - rx, y as i32 - ry));
                }
            }
        }
        out
    }
}

/// Per-pixel result of one extended erosion + dilation pass.
#[derive(Debug, Clone)]
pub struct MorphResult {
    /// Image width.
    pub width: usize,
    /// Image height.
    pub height: usize,
    /// For each pixel, the SE-offset index (into [`StructuringElement::offsets`])
    /// of the **erosion** pixel: minimum cumulative distance (eq. 5).
    pub min_index: Vec<u32>,
    /// SE-offset index of the **dilation** pixel: maximum cumulative distance
    /// (eq. 6).
    pub max_index: Vec<u32>,
    /// Field value `D_B` at the erosion pixel.
    pub min_value: Vec<f32>,
    /// Field value `D_B` at the dilation pixel.
    pub max_value: Vec<f32>,
}

/// The MEI score image (step 2 of AMC).
#[derive(Debug, Clone)]
pub struct MeiImage {
    /// Image width.
    pub width: usize,
    /// Image height.
    pub height: usize,
    /// Row-major MEI scores.
    pub scores: Vec<f32>,
}

impl MeiImage {
    /// Score at `(x, y)`.
    pub fn get(&self, x: usize, y: usize) -> f32 {
        self.scores[y * self.width + x]
    }

    /// Indices `(x, y)` of the `k` highest-scoring pixels, descending.
    ///
    /// Ties are broken by pixel order so the result is deterministic.
    pub fn top_k(&self, k: usize) -> Vec<(usize, usize)> {
        let mut order: Vec<usize> = (0..self.scores.len()).collect();
        order.sort_by(|&a, &b| {
            self.scores[b]
                .partial_cmp(&self.scores[a])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        order
            .into_iter()
            .take(k)
            .map(|i| (i % self.width, i / self.width))
            .collect()
    }
}

#[inline(always)]
fn clamp_coord(v: i64, max: usize) -> usize {
    v.clamp(0, max as i64 - 1) as usize
}

/// Normalize every pixel of a cube (eqs. 3–4), producing a BIP cube of
/// probability spectra — the output of the pipeline's Normalization stage.
pub fn normalize_cube(cube: &Cube) -> Cube {
    let dims = cube.dims();
    let mut data = cube
        .to_interleave(crate::cube::Interleave::Bip)
        .into_owned()
        .into_vec();
    data.par_chunks_mut(dims.bands).for_each(|px| {
        let sum: f32 = px.iter().sum();
        if sum > f32::MIN_POSITIVE {
            let inv = 1.0 / sum;
            px.iter_mut().for_each(|v| *v *= inv);
        } else {
            px.fill(1.0 / dims.bands as f32);
        }
    });
    Cube::from_vec(dims, crate::cube::Interleave::Bip, data)
        .expect("normalize preserves dimensions")
}

/// Compute the cumulative-distance **field** `D_B` (eq. 1) for every pixel:
/// `field[y*w + x] = Σ_{δ∈B} SID(f(x,y), f((x,y)+δ))` with clamped borders.
///
/// `normalized` must be a BIP cube of normalized spectra (see
/// [`normalize_cube`]).
pub fn cumulative_field(
    normalized: &Cube,
    se: &StructuringElement,
    distance: SpectralDistance,
) -> Vec<f32> {
    let dims = normalized.dims();
    let (w, h) = (dims.width, dims.height);
    let offsets = se.offsets();
    let mut field = vec![0.0f32; w * h];
    field.par_chunks_mut(w).enumerate().for_each(|(y, row)| {
        for (x, slot) in row.iter_mut().enumerate() {
            let centre = normalized
                .pixel_slice(x, y)
                .expect("normalized cube is BIP");
            let mut acc = 0.0f32;
            for &(dx, dy) in &offsets {
                let nx = clamp_coord(x as i64 + dx as i64, w);
                let ny = clamp_coord(y as i64 + dy as i64, h);
                let other = normalized
                    .pixel_slice(nx, ny)
                    .expect("normalized cube is BIP");
                acc += distance.eval_normalized(centre, other);
            }
            *slot = acc;
        }
    });
    field
}

/// Extended erosion and dilation (eqs. 5–6): per pixel, the SE neighbour
/// index whose field value is minimal (erosion) and maximal (dilation).
///
/// Ties keep the first neighbour in [`StructuringElement::offsets`] order,
/// matching the GPU min/max kernel's strict comparisons.
pub fn erode_dilate(
    normalized: &Cube,
    se: &StructuringElement,
    distance: SpectralDistance,
) -> MorphResult {
    let field = cumulative_field(normalized, se, distance);
    erode_dilate_from_field(
        normalized.dims().width,
        normalized.dims().height,
        se,
        &field,
    )
}

/// Erosion/dilation selection given a precomputed cumulative field.
pub fn erode_dilate_from_field(
    width: usize,
    height: usize,
    se: &StructuringElement,
    field: &[f32],
) -> MorphResult {
    assert_eq!(field.len(), width * height, "field size");
    let offsets = se.offsets();
    let (w, h) = (width, height);
    let mut min_index = vec![0u32; w * h];
    let mut max_index = vec![0u32; w * h];
    let mut min_value = vec![0.0f32; w * h];
    let mut max_value = vec![0.0f32; w * h];

    min_index
        .par_chunks_mut(w)
        .zip(max_index.par_chunks_mut(w))
        .zip(min_value.par_chunks_mut(w))
        .zip(max_value.par_chunks_mut(w))
        .enumerate()
        .for_each(|(y, (((mini, maxi), minv), maxv))| {
            for x in 0..w {
                let mut kmin = 0usize;
                let mut kmax = 0usize;
                let mut vmin = f32::INFINITY;
                let mut vmax = f32::NEG_INFINITY;
                for (k, &(dx, dy)) in offsets.iter().enumerate() {
                    let nx = clamp_coord(x as i64 + dx as i64, w);
                    let ny = clamp_coord(y as i64 + dy as i64, h);
                    let d = field[ny * w + nx];
                    if d < vmin {
                        vmin = d;
                        kmin = k;
                    }
                    if d > vmax {
                        vmax = d;
                        kmax = k;
                    }
                }
                mini[x] = kmin as u32;
                maxi[x] = kmax as u32;
                minv[x] = vmin;
                maxv[x] = vmax;
            }
        });

    MorphResult {
        width: w,
        height: h,
        min_index,
        max_index,
        min_value,
        max_value,
    }
}

/// Resolve an SE neighbour index at `(x, y)` back to clamped image
/// coordinates.
pub fn neighbour_coords(
    se_offsets: &[(i32, i32)],
    width: usize,
    height: usize,
    x: usize,
    y: usize,
    index: u32,
) -> (usize, usize) {
    let (dx, dy) = se_offsets[index as usize];
    (
        clamp_coord(x as i64 + dx as i64, width),
        clamp_coord(y as i64 + dy as i64, height),
    )
}

fn mei_from_morph(
    normalized: &Cube,
    se: &StructuringElement,
    distance: SpectralDistance,
    morph: &MorphResult,
) -> MeiImage {
    let offsets = se.offsets();
    let (w, h) = (morph.width, morph.height);
    let mut scores = vec![0.0f32; w * h];
    scores.par_chunks_mut(w).enumerate().for_each(|(y, row)| {
        for (x, slot) in row.iter_mut().enumerate() {
            let i = y * w + x;
            let (minx, miny) = neighbour_coords(&offsets, w, h, x, y, morph.min_index[i]);
            let (maxx, maxy) = neighbour_coords(&offsets, w, h, x, y, morph.max_index[i]);
            let pmin = normalized
                .pixel_slice(minx, miny)
                .expect("normalized cube is BIP");
            let pmax = normalized
                .pixel_slice(maxx, maxy)
                .expect("normalized cube is BIP");
            *slot = distance.eval_normalized(pmax, pmin);
        }
    });
    MeiImage {
        width: w,
        height: h,
        scores,
    }
}

/// Compute the MEI image with the paper's field semantics (the default).
pub fn mei(
    normalized: &Cube,
    se: &StructuringElement,
    distance: SpectralDistance,
) -> (MeiImage, MorphResult) {
    let morph = erode_dilate(normalized, se, distance);
    let img = mei_from_morph(normalized, se, distance, &morph);
    (img, morph)
}

/// Convenience wrapper: normalize a raw cube and compute its MEI image.
pub fn mei_of_raw(
    cube: &Cube,
    se: &StructuringElement,
    distance: SpectralDistance,
) -> (MeiImage, MorphResult) {
    let normalized = normalize_cube(cube);
    mei(&normalized, se, distance)
}

/// Materialise the extended-erosion image: each output pixel is the full
/// spectral vector of its neighbourhood's erosion pixel (the most spectrally
/// typical neighbour, eq. 5).
///
/// Together with [`dilate_image`] this supports the *sequences of extended
/// morphological transformations* of the paper's reference \[11\]
/// (opening/closing by composition).
pub fn erode_image(
    raw: &Cube,
    normalized: &Cube,
    se: &StructuringElement,
    distance: SpectralDistance,
) -> Cube {
    select_image(raw, normalized, se, distance, true)
}

/// Materialise the extended-dilation image: each output pixel is the
/// spectral vector of the most spectrally distinct neighbour (eq. 6).
pub fn dilate_image(
    raw: &Cube,
    normalized: &Cube,
    se: &StructuringElement,
    distance: SpectralDistance,
) -> Cube {
    select_image(raw, normalized, se, distance, false)
}

fn select_image(
    raw: &Cube,
    normalized: &Cube,
    se: &StructuringElement,
    distance: SpectralDistance,
    erosion: bool,
) -> Cube {
    let dims = raw.dims();
    assert_eq!(dims, normalized.dims(), "raw/normalized dims must match");
    let morph = erode_dilate(normalized, se, distance);
    let offsets = se.offsets();
    let (w, h) = (dims.width, dims.height);
    let src = raw.to_interleave(crate::cube::Interleave::Bip);
    let mut out = vec![0.0f32; dims.samples()];
    out.par_chunks_mut(w * dims.bands)
        .enumerate()
        .for_each(|(y, row)| {
            for x in 0..w {
                let i = y * w + x;
                let idx = if erosion {
                    morph.min_index[i]
                } else {
                    morph.max_index[i]
                };
                let (sx, sy) = neighbour_coords(&offsets, w, h, x, y, idx);
                let px = src.pixel_slice(sx, sy).expect("BIP");
                row[x * dims.bands..(x + 1) * dims.bands].copy_from_slice(px);
            }
        });
    Cube::from_vec(dims, crate::cube::Interleave::Bip, out).expect("dims preserved")
}

/// Extended morphological **opening**: erosion followed by dilation.
///
/// Removes bright (spectrally anomalous) details smaller than the SE while
/// preserving the background — the building block of the derivative
/// morphological profiles in the paper's reference \[11\].
pub fn open_image(raw: &Cube, se: &StructuringElement, distance: SpectralDistance) -> Cube {
    let norm = normalize_cube(raw);
    let eroded = erode_image(raw, &norm, se, distance);
    let eroded_norm = normalize_cube(&eroded);
    dilate_image(&eroded, &eroded_norm, se, distance)
}

/// Extended morphological **closing**: dilation followed by erosion.
pub fn close_image(raw: &Cube, se: &StructuringElement, distance: SpectralDistance) -> Cube {
    let norm = normalize_cube(raw);
    let dilated = dilate_image(raw, &norm, se, distance);
    let dilated_norm = normalize_cube(&dilated);
    erode_image(&dilated, &dilated_norm, se, distance)
}

/// Window-local cumulative distances at one anchor (ablation variant):
/// entry `k` is `Σ_{m∈B} SID(f((x,y)+δ_k), f((x,y)+δ_m))`, i.e. `D` is
/// recomputed relative to the window anchored at `(x, y)`.
pub fn window_local_distances(
    normalized: &Cube,
    se: &StructuringElement,
    distance: SpectralDistance,
    x: usize,
    y: usize,
) -> Vec<f32> {
    let dims = normalized.dims();
    let offsets = se.offsets();
    let window: Vec<&[f32]> = offsets
        .iter()
        .map(|&(dx, dy)| {
            let nx = clamp_coord(x as i64 + dx as i64, dims.width);
            let ny = clamp_coord(y as i64 + dy as i64, dims.height);
            normalized
                .pixel_slice(nx, ny)
                .expect("normalized cube is BIP")
        })
        .collect();
    let mut out = vec![0.0f32; window.len()];
    for (k, &cand) in window.iter().enumerate() {
        let mut acc = 0.0f32;
        for &other in &window {
            acc += distance.eval_normalized(cand, other);
        }
        out[k] = acc;
    }
    out
}

/// MEI with the window-local ordering (ablation; `p_B` times the cost of
/// [`mei`]).
pub fn mei_window_local(
    normalized: &Cube,
    se: &StructuringElement,
    distance: SpectralDistance,
) -> (MeiImage, MorphResult) {
    let dims = normalized.dims();
    let (w, h) = (dims.width, dims.height);
    let mut min_index = vec![0u32; w * h];
    let mut max_index = vec![0u32; w * h];
    let mut min_value = vec![0.0f32; w * h];
    let mut max_value = vec![0.0f32; w * h];

    min_index
        .par_chunks_mut(w)
        .zip(max_index.par_chunks_mut(w))
        .zip(min_value.par_chunks_mut(w))
        .zip(max_value.par_chunks_mut(w))
        .enumerate()
        .for_each(|(y, (((mini, maxi), minv), maxv))| {
            for x in 0..w {
                let dists = window_local_distances(normalized, se, distance, x, y);
                let (mut kmin, mut kmax) = (0usize, 0usize);
                for (k, &d) in dists.iter().enumerate() {
                    if d < dists[kmin] {
                        kmin = k;
                    }
                    if d > dists[kmax] {
                        kmax = k;
                    }
                }
                mini[x] = kmin as u32;
                maxi[x] = kmax as u32;
                minv[x] = dists[kmin];
                maxv[x] = dists[kmax];
            }
        });

    let morph = MorphResult {
        width: w,
        height: h,
        min_index,
        max_index,
        min_value,
        max_value,
    };
    let img = mei_from_morph(normalized, se, distance, &morph);
    (img, morph)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cube::{Cube, CubeDims, Interleave};

    fn two_material_cube() -> Cube {
        // 5x5 cube, 3 bands: background material A everywhere, a single
        // anomalous pixel of material B at (2,2).
        let a = [10.0f32, 20.0, 30.0];
        let b = [30.0f32, 20.0, 10.0];
        Cube::from_fn(CubeDims::new(5, 5, 3), Interleave::Bip, |x, y, band| {
            if (x, y) == (2, 2) {
                b[band]
            } else {
                a[band]
            }
        })
        .unwrap()
    }

    #[test]
    fn se_constructors() {
        let sq = StructuringElement::square(3).unwrap();
        assert_eq!(sq.extent(), (3, 3));
        assert_eq!(sq.len(), 9);
        assert_eq!(sq.radius_x(), 1);
        assert_eq!(sq.radius_y(), 1);
        assert!(!sq.is_empty());

        let rect = StructuringElement::rect(5, 3).unwrap();
        assert_eq!(rect.len(), 15);
        assert_eq!(rect.radius_x(), 2);
        assert_eq!(rect.radius_y(), 1);

        let disk = StructuringElement::disk(1).unwrap();
        assert_eq!(disk.len(), 5); // plus-shaped at radius 1
        let disk2 = StructuringElement::disk(2).unwrap();
        assert_eq!(disk2.extent(), (5, 5));
        assert!(disk2.len() > 5 && disk2.len() < 25);
    }

    #[test]
    fn se_rejects_even_and_empty() {
        assert!(StructuringElement::square(0).is_err());
        assert!(StructuringElement::square(2).is_err());
        assert!(StructuringElement::rect(4, 3).is_err());
        // Anchor must be active.
        let mut mask = vec![true; 9];
        mask[4] = false;
        assert!(StructuringElement::from_mask(3, 3, mask).is_err());
        // Wrong mask length.
        assert!(StructuringElement::from_mask(3, 3, vec![true; 8]).is_err());
    }

    #[test]
    fn offsets_are_centred_and_ordered() {
        let se = StructuringElement::square(3).unwrap();
        let offs = se.offsets();
        assert_eq!(offs.len(), 9);
        assert_eq!(offs[0], (-1, -1));
        assert_eq!(offs[4], (0, 0));
        assert_eq!(offs[8], (1, 1));
        let sum: (i32, i32) = offs
            .iter()
            .fold((0, 0), |acc, &(x, y)| (acc.0 + x, acc.1 + y));
        assert_eq!(sum, (0, 0));
    }

    #[test]
    fn normalize_cube_rows_sum_to_one() {
        let cube = two_material_cube();
        let norm = normalize_cube(&cube);
        for y in 0..5 {
            for x in 0..5 {
                let p = norm.pixel_slice(x, y).unwrap();
                let s: f32 = p.iter().sum();
                assert!((s - 1.0).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn field_is_zero_on_uniform_regions() {
        let cube = two_material_cube();
        let norm = normalize_cube(&cube);
        let se = StructuringElement::square(3).unwrap();
        let field = cumulative_field(&norm, &se, SpectralDistance::Sid);
        // Far corner sees only material A.
        assert!(field[0].abs() < 1e-5);
        assert!(field[4].abs() < 1e-5);
    }

    #[test]
    fn field_peaks_at_anomalous_pixel() {
        let cube = two_material_cube();
        let norm = normalize_cube(&cube);
        let se = StructuringElement::square(3).unwrap();
        let field = cumulative_field(&norm, &se, SpectralDistance::Sid);
        // The anomaly differs from all 8 neighbours: its field value is the
        // global maximum.
        let peak_idx = field
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!((peak_idx % 5, peak_idx / 5), (2, 2));
        // A neighbour of the anomaly accumulates exactly one SID term; the
        // anomaly accumulates eight.
        let d_neighbour = field[2 * 5 + 1]; // (1,2)
        let d_anomaly = field[2 * 5 + 2];
        assert!(
            (d_anomaly / d_neighbour - 8.0).abs() < 1e-3,
            "{d_anomaly} vs {d_neighbour}"
        );
    }

    #[test]
    fn erode_dilate_selects_anomaly_as_dilation() {
        let cube = two_material_cube();
        let norm = normalize_cube(&cube);
        let se = StructuringElement::square(3).unwrap();
        let offsets = se.offsets();
        let m = erode_dilate(&norm, &se, SpectralDistance::Sid);
        // Every window containing (2,2) must pick it as the dilation pixel.
        for y in 1..=3usize {
            for x in 1..=3usize {
                let i = y * 5 + x;
                let (mx, my) = neighbour_coords(&offsets, 5, 5, x, y, m.max_index[i]);
                assert_eq!((mx, my), (2, 2), "window at ({x},{y})");
                // The erosion pixel must NOT be the anomaly.
                let (nx, ny) = neighbour_coords(&offsets, 5, 5, x, y, m.min_index[i]);
                assert_ne!((nx, ny), (2, 2));
                assert!(m.min_value[i] <= m.max_value[i]);
            }
        }
    }

    #[test]
    fn erode_dilate_from_field_matches_combined_path() {
        let cube = two_material_cube();
        let norm = normalize_cube(&cube);
        let se = StructuringElement::square(3).unwrap();
        let field = cumulative_field(&norm, &se, SpectralDistance::Sid);
        let a = erode_dilate(&norm, &se, SpectralDistance::Sid);
        let b = erode_dilate_from_field(5, 5, &se, &field);
        assert_eq!(a.min_index, b.min_index);
        assert_eq!(a.max_index, b.max_index);
        assert_eq!(a.min_value, b.min_value);
        assert_eq!(a.max_value, b.max_value);
    }

    #[test]
    fn mei_peaks_on_windows_containing_anomaly() {
        let cube = two_material_cube();
        let (mei_img, _) = mei_of_raw(
            &cube,
            &StructuringElement::square(3).unwrap(),
            SpectralDistance::Sid,
        );
        // Windows far from the anomaly have (near-)zero MEI.
        assert!(mei_img.get(0, 0) < 1e-5);
        assert!(mei_img.get(4, 4) < 1e-5);
        // Windows containing it see SID(material B, material A).
        let peak = mei_img.get(2, 2);
        assert!(peak > 1e-3);
        for y in 1..=3usize {
            for x in 1..=3usize {
                assert!((mei_img.get(x, y) - peak).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn mei_constant_image_is_zero_everywhere() {
        let cube = Cube::from_fn(CubeDims::new(4, 4, 6), Interleave::Bip, |_, _, b| {
            (b + 1) as f32
        })
        .unwrap();
        let (mei_img, morph) = mei_of_raw(
            &cube,
            &StructuringElement::square(3).unwrap(),
            SpectralDistance::Sid,
        );
        assert!(mei_img.scores.iter().all(|&s| s.abs() < 1e-6));
        assert!(morph
            .min_value
            .iter()
            .zip(&morph.max_value)
            .all(|(a, b)| a <= b));
    }

    #[test]
    fn window_local_variant_agrees_on_anomaly_scene() {
        // Both orderings must find the anomaly as the dilation pixel and
        // produce the same MEI peak structure on this simple scene.
        let cube = two_material_cube();
        let norm = normalize_cube(&cube);
        let se = StructuringElement::square(3).unwrap();
        let (field_mei, _) = mei(&norm, &se, SpectralDistance::Sid);
        let (local_mei, local_morph) = mei_window_local(&norm, &se, SpectralDistance::Sid);
        let offsets = se.offsets();
        let i = 2 * 5 + 2;
        let (mx, my) = neighbour_coords(&offsets, 5, 5, 2, 2, local_morph.max_index[i]);
        assert_eq!((mx, my), (2, 2));
        assert!((field_mei.get(2, 2) - local_mei.get(2, 2)).abs() < 1e-5);
        assert!(local_mei.get(0, 0) < 1e-5);
    }

    #[test]
    fn window_local_distances_uniform_window_is_zero() {
        let cube = two_material_cube();
        let norm = normalize_cube(&cube);
        let se = StructuringElement::square(3).unwrap();
        let d = window_local_distances(&norm, &se, SpectralDistance::Sid, 0, 0);
        assert!(d.iter().all(|&v| v.abs() < 1e-5), "{d:?}");
        // Centred on the anomaly, the anomaly index (4 = centre) dominates.
        let d = window_local_distances(&norm, &se, SpectralDistance::Sid, 2, 2);
        let kmax = d
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(kmax, 4);
    }

    #[test]
    fn erode_image_replaces_anomaly_with_typical_neighbour() {
        let cube = two_material_cube();
        let norm = normalize_cube(&cube);
        let se = StructuringElement::square(3).unwrap();
        let eroded = erode_image(&cube, &norm, &se, SpectralDistance::Sid);
        // Every pixel of the eroded image is material A (the anomaly's
        // neighbourhood selects a typical — A — pixel).
        let a = [10.0f32, 20.0, 30.0];
        for y in 0..5 {
            for x in 0..5 {
                assert_eq!(eroded.pixel(x, y), a.to_vec(), "({x},{y})");
            }
        }
    }

    #[test]
    fn dilate_image_spreads_the_anomaly() {
        let cube = two_material_cube();
        let norm = normalize_cube(&cube);
        let se = StructuringElement::square(3).unwrap();
        let dilated = dilate_image(&cube, &norm, &se, SpectralDistance::Sid);
        // All windows containing (2,2) now carry material B.
        let b = [30.0f32, 20.0, 10.0];
        for y in 1..=3usize {
            for x in 1..=3usize {
                assert_eq!(dilated.pixel(x, y), b.to_vec(), "({x},{y})");
            }
        }
        // Far corners keep material A.
        assert_eq!(dilated.pixel(0, 0), vec![10.0, 20.0, 30.0]);
    }

    #[test]
    fn opening_removes_small_anomaly() {
        // The single-pixel anomaly is smaller than the 3x3 SE: opening
        // (erosion then dilation) must remove it entirely.
        let cube = two_material_cube();
        let se = StructuringElement::square(3).unwrap();
        let opened = open_image(&cube, &se, SpectralDistance::Sid);
        let a = vec![10.0f32, 20.0, 30.0];
        for y in 0..5 {
            for x in 0..5 {
                assert_eq!(opened.pixel(x, y), a, "({x},{y})");
            }
        }
    }

    #[test]
    fn closing_preserves_uniform_regions() {
        // On a constant image, opening and closing are identities.
        let cube = Cube::from_fn(CubeDims::new(4, 4, 3), Interleave::Bip, |_, _, b| {
            (b + 1) as f32 * 5.0
        })
        .unwrap();
        let se = StructuringElement::square(3).unwrap();
        assert_eq!(close_image(&cube, &se, SpectralDistance::Sid), cube);
        assert_eq!(open_image(&cube, &se, SpectralDistance::Sid), cube);
    }

    #[test]
    fn morphology_images_preserve_dims_and_interleave() {
        let cube = two_material_cube();
        let norm = normalize_cube(&cube);
        let se = StructuringElement::square(3).unwrap();
        let e = erode_image(&cube, &norm, &se, SpectralDistance::Sid);
        assert_eq!(e.dims(), cube.dims());
        assert_eq!(e.interleave(), Interleave::Bip);
    }

    #[test]
    fn top_k_orders_by_score_then_index() {
        let img = MeiImage {
            width: 3,
            height: 1,
            scores: vec![0.5, 0.9, 0.5],
        };
        assert_eq!(img.top_k(3), vec![(1, 0), (0, 0), (2, 0)]);
        assert_eq!(img.top_k(1), vec![(1, 0)]);
        assert_eq!(img.top_k(0), vec![]);
    }

    #[test]
    fn neighbour_coords_clamp_at_borders() {
        let offs = StructuringElement::square(3).unwrap().offsets();
        // Top-left corner, offset (-1,-1) clamps to (0,0).
        assert_eq!(neighbour_coords(&offs, 5, 5, 0, 0, 0), (0, 0));
        // Bottom-right corner, offset (1,1) clamps to (4,4).
        assert_eq!(neighbour_coords(&offs, 5, 5, 4, 4, 8), (4, 4));
    }

    #[test]
    fn disk_se_changes_neighbourhood() {
        let cube = two_material_cube();
        let norm = normalize_cube(&cube);
        let disk = StructuringElement::disk(1).unwrap();
        // Disk(1) excludes diagonals: the field at (1,1) sees no anomaly.
        let field = cumulative_field(&norm, &disk, SpectralDistance::Sid);
        assert!(field[5 + 1].abs() < 1e-5);
        // But the square SE at (1,1) does see it.
        let sq_field = cumulative_field(
            &norm,
            &StructuringElement::square(3).unwrap(),
            SpectralDistance::Sid,
        );
        assert!(sq_field[5 + 1] > 1e-4);
    }
}
