//! Band statistics and signal-to-noise estimation.
//!
//! Used by the synthetic scene generator to verify that generated data has
//! the intended radiometric properties, and by examples to summarise cubes.

use crate::cube::Cube;

/// Summary statistics of one spectral band.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BandStats {
    /// Minimum sample value.
    pub min: f32,
    /// Maximum sample value.
    pub max: f32,
    /// Mean sample value.
    pub mean: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
}

/// Compute statistics for band `band` of a cube.
pub fn band_stats(cube: &Cube, band: usize) -> BandStats {
    let dims = cube.dims();
    let mut min = f32::INFINITY;
    let mut max = f32::NEG_INFINITY;
    let mut sum = 0.0f64;
    let mut sum_sq = 0.0f64;
    let n = dims.pixels() as f64;
    for y in 0..dims.height {
        for x in 0..dims.width {
            let v = cube.get(x, y, band);
            min = min.min(v);
            max = max.max(v);
            sum += v as f64;
            sum_sq += (v as f64) * (v as f64);
        }
    }
    let mean = sum / n;
    let var = (sum_sq / n - mean * mean).max(0.0);
    BandStats {
        min,
        max,
        mean,
        std_dev: var.sqrt(),
    }
}

/// Statistics for every band.
pub fn all_band_stats(cube: &Cube) -> Vec<BandStats> {
    (0..cube.dims().bands)
        .map(|b| band_stats(cube, b))
        .collect()
}

/// Estimate per-band SNR (in dB) of `noisy` against the noise-free
/// `reference` cube: `10·log10(signal_power / noise_power)`.
pub fn snr_db(reference: &Cube, noisy: &Cube) -> Vec<f64> {
    assert_eq!(reference.dims(), noisy.dims(), "cube dims must match");
    let dims = reference.dims();
    let mut out = Vec::with_capacity(dims.bands);
    for b in 0..dims.bands {
        let mut signal = 0.0f64;
        let mut noise = 0.0f64;
        for y in 0..dims.height {
            for x in 0..dims.width {
                let s = reference.get(x, y, b) as f64;
                let d = noisy.get(x, y, b) as f64 - s;
                signal += s * s;
                noise += d * d;
            }
        }
        out.push(if noise <= 0.0 {
            f64::INFINITY
        } else {
            10.0 * (signal / noise).log10()
        });
    }
    out
}

/// Mean spectrum over all pixels.
pub fn mean_spectrum(cube: &Cube) -> Vec<f64> {
    let dims = cube.dims();
    let mut acc = vec![0.0f64; dims.bands];
    for y in 0..dims.height {
        for x in 0..dims.width {
            for (b, slot) in acc.iter_mut().enumerate() {
                *slot += cube.get(x, y, b) as f64;
            }
        }
    }
    let n = dims.pixels() as f64;
    acc.iter_mut().for_each(|v| *v /= n);
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cube::{CubeDims, Interleave};

    #[test]
    fn constant_band_statistics() {
        let cube = Cube::from_fn(CubeDims::new(3, 3, 2), Interleave::Bip, |_, _, b| {
            if b == 0 {
                5.0
            } else {
                -1.0
            }
        })
        .unwrap();
        let s = band_stats(&cube, 0);
        assert_eq!(s.min, 5.0);
        assert_eq!(s.max, 5.0);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!(s.std_dev < 1e-9);
        let all = all_band_stats(&cube);
        assert_eq!(all.len(), 2);
        assert_eq!(all[1].max, -1.0);
    }

    #[test]
    fn ramp_band_statistics() {
        // Values 0..4 over a 5x1 image: mean 2, var 2.
        let cube =
            Cube::from_fn(CubeDims::new(5, 1, 1), Interleave::Bip, |x, _, _| x as f32).unwrap();
        let s = band_stats(&cube, 0);
        assert_eq!(s.min, 0.0);
        assert_eq!(s.max, 4.0);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert!((s.std_dev - 2.0f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn snr_of_identical_cubes_is_infinite() {
        let cube = Cube::from_fn(CubeDims::new(2, 2, 2), Interleave::Bip, |x, y, b| {
            (x + y + b) as f32 + 1.0
        })
        .unwrap();
        let snr = snr_db(&cube, &cube);
        assert!(snr.iter().all(|v| v.is_infinite()));
    }

    #[test]
    fn snr_matches_hand_computation() {
        let refc = Cube::from_fn(CubeDims::new(2, 1, 1), Interleave::Bip, |_, _, _| 10.0).unwrap();
        let mut noisy = refc.clone();
        noisy.set(0, 0, 0, 11.0); // noise power = 1 over 2 pixels
        let snr = snr_db(&refc, &noisy);
        // signal power = 200, noise power = 1 → 10·log10(200) ≈ 23.0103
        assert!((snr[0] - 10.0 * 200.0f64.log10()).abs() < 1e-9);
    }

    #[test]
    fn mean_spectrum_averages_pixels() {
        let cube = Cube::from_fn(CubeDims::new(2, 1, 2), Interleave::Bip, |x, _, b| {
            (x * 10 + b) as f32
        })
        .unwrap();
        let m = mean_spectrum(&cube);
        assert_eq!(m, vec![5.0, 6.0]);
    }
}
