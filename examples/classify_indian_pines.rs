//! The paper's headline application: unsupervised classification of an
//! (synthetic) AVIRIS Indian Pines scene with AMC, scored against ground
//! truth exactly like Table 3.
//!
//! ```text
//! cargo run --release --example classify_indian_pines [seed]
//! ```
//!
//! Writes renders (band image, ground truth, MEI, classification map) next
//! to the accuracy report.

use hyperspec::prelude::*;
use hyperspec::scene::library::{indian_pines_classes, PAPER_OVERALL_ACCURACY};
use hyperspec::scene::render;
use std::time::Instant;

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2026);
    let classes = indian_pines_classes();
    println!("generating the synthetic Indian Pines analogue (seed {seed})...");
    let scene = generate(&classes, &SceneConfig::reduced_indian_pines(seed));
    let dims = scene.cube.dims();
    println!(
        "scene: {}x{} pixels, {} bands, {} ground-truth classes",
        dims.width,
        dims.height,
        dims.bands,
        scene.class_count()
    );

    let t0 = Instant::now();
    let amc = AmcClassifier::new(AmcConfig::paper_default(classes.len()));
    let out = amc.classify(&scene.cube).expect("AMC");
    println!(
        "AMC finished in {:.2?}: {} endmembers extracted",
        t0.elapsed(),
        out.class_count()
    );

    let cm = hyperspec::hsi::metrics::score_unsupervised(
        &scene.ground_truth,
        &out.labels,
        out.class_count(),
        classes.len(),
    )
    .expect("scoring");
    let per = cm.per_class_accuracy();
    println!("\n{:<30} {:>9} {:>9}", "Class", "Paper(%)", "Here(%)");
    for (i, class) in classes.iter().enumerate() {
        println!(
            "{:<30} {:>9.2} {:>9.2}",
            class.name, class.paper_accuracy, per[i]
        );
    }
    println!(
        "{:<30} {:>9.2} {:>9.2}   (kappa {:.3})",
        "Overall:",
        PAPER_OVERALL_ACCURACY,
        cm.overall_accuracy(),
        cm.kappa()
    );

    // Renders (Fig. 5 analogue).
    let out_dir = std::path::Path::new("out");
    let band = dims.bands * 9 / 100; // ~587nm
    render::write_file(
        &out_dir.join("indian_pines_band.pgm"),
        &render::band_to_pgm(&scene.cube, band),
    )
    .expect("write band render");
    render::write_file(
        &out_dir.join("indian_pines_gt.ppm"),
        &render::labels_to_ppm(&scene.ground_truth, dims.width, dims.height),
    )
    .expect("write ground truth");
    render::write_file(
        &out_dir.join("indian_pines_mei.pgm"),
        &render::scores_to_pgm(&out.mei.scores, dims.width, dims.height),
    )
    .expect("write MEI");
    let mapped = hyperspec::hsi::metrics::map_clusters_to_truth(
        &scene.ground_truth,
        &out.labels,
        out.class_count(),
        classes.len(),
    )
    .expect("mapping");
    render::write_file(
        &out_dir.join("indian_pines_classified.ppm"),
        &render::labels_to_ppm(&mapped, dims.width, dims.height),
    )
    .expect("write classification");
    println!("\nrenders written to out/indian_pines_*.p[gp]m");
}
