//! # `amc-core` — the paper's primary contribution
//!
//! A stream-model implementation of the Automated Morphological
//! Classification (AMC) algorithm on the simulated commodity GPU, plus the
//! CPU baselines the paper compares against.
//!
//! * [`layout`] — Fig. 3: the hyperspectral cube split into a stack of 2D
//!   RGBA textures, four consecutive bands per texel.
//! * [`kernels`] — the fragment programs of every pipeline stage
//!   (normalization, cumulative distance, min/max, SID), in fp30-style
//!   assembly, with closure twins used as the fast execution path.
//! * [`pipeline`] — Fig. 4: the six-stage stream pipeline (upload →
//!   normalize → cumulative distance → max/min → SID → download), with
//!   chunking for cubes that exceed video memory.
//! * [`cpu`] — the hand-tuned CPU reference implementations (scalar "gcc"
//!   shape and 4-lane "icc" shape) with exact operation counting.
//! * [`perf`] — the analytic work model that regenerates Tables 4–5 and
//!   Fig. 6 at full AVIRIS scale without executing 500 MB simulations, and
//!   the machinery validating it against executed-simulation counters.
//! * [`fleet`] — heterogeneous multi-device sharding: the chunk plan
//!   distributed across N simulated GPUs by modeled throughput, with
//!   work-stealing rebalancing and a deterministic chunk-order merge.

#![warn(missing_docs)]

pub mod cpu;
pub mod fleet;
pub mod graph;
pub mod kernels;
pub mod layout;
pub mod perf;
pub mod pipeline;

pub use fleet::{DeviceFleet, FleetConfig, FleetOutput};
pub use pipeline::{GpuAmc, KernelMode, PipelineOutput};
