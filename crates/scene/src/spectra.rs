//! Parametric reflectance signatures over an AVIRIS-like band axis.
//!
//! AVIRIS samples 0.4–2.5 µm in ~10 nm channels. Signatures are synthesised
//! from a small physical vocabulary — continuum slope, Gaussian
//! absorption/reflection features, the vegetation red-edge sigmoid, water's
//! deep IR absorption — which is enough to give every land-cover family the
//! qualitative shape that drives SID orderings.

/// Wavelength (µm) of band `b` out of `bands` over the AVIRIS range.
pub fn wavelength(b: usize, bands: usize) -> f64 {
    0.4 + 2.1 * (b as f64 + 0.5) / bands as f64
}

/// A spectral family with physically-motivated shape parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Family {
    /// Green vegetation canopy over soil background: chlorophyll well,
    /// red-edge jump, NIR plateau, water-absorption dips. `vigor` scales the
    /// red-edge amplitude; `canopy` is the vegetation ground-cover fraction
    /// (early-season crops expose a lot of soil — the paper's mixed-pixel
    /// story), linearly mixing with a soil background.
    Vegetation {
        /// Red-edge strength in `[0, 1]` (crop vigour / growth stage).
        vigor: f64,
        /// Canopy cover fraction in `[0, 1]`.
        canopy: f64,
    },
    /// Bare soil: bright, gently rising continuum with iron-oxide bump.
    Soil {
        /// Overall brightness in `[0, 1]`.
        brightness: f64,
    },
    /// Man-made surfaces (concrete, asphalt, roofs): flat-ish continuum.
    ManMade {
        /// Albedo in `[0, 1]`.
        albedo: f64,
    },
    /// Open water: blue-green peak, near-zero beyond 1 µm.
    Water,
    /// Senescent / dry vegetation (hay, fescue): yellow slope, cellulose
    /// features, no strong red edge.
    DryVegetation {
        /// Brightness in `[0, 1]`.
        brightness: f64,
    },
}

#[inline]
fn gauss(x: f64, centre: f64, width: f64) -> f64 {
    let d = (x - centre) / width;
    (-0.5 * d * d).exp()
}

#[inline]
fn sigmoid(x: f64, centre: f64, steep: f64) -> f64 {
    1.0 / (1.0 + (-(x - centre) / steep).exp())
}

impl Family {
    /// Reflectance in `[0, 1]` at wavelength `wl` (µm).
    pub fn reflectance(&self, wl: f64) -> f64 {
        let r = match *self {
            Family::Vegetation { vigor, canopy } => {
                let green_peak = 0.10 * gauss(wl, 0.55, 0.04);
                let chlorophyll_well = -0.05 * gauss(wl, 0.67, 0.05);
                let red_edge = (0.30 + 0.35 * vigor) * sigmoid(wl, 0.72, 0.02);
                let water1 = -0.18 * gauss(wl, 1.45, 0.06);
                let water2 = -0.22 * gauss(wl, 1.94, 0.07);
                let ir_decay = -0.12 * sigmoid(wl, 1.3, 0.2);
                let leaf =
                    0.08 + green_peak + chlorophyll_well + red_edge + water1 + water2 + ir_decay;
                let soil = Family::Soil { brightness: 0.55 }.reflectance(wl);
                canopy * leaf + (1.0 - canopy) * soil
            }
            Family::Soil { brightness } => {
                let slope = 0.25 * sigmoid(wl, 0.9, 0.4);
                let iron = 0.05 * gauss(wl, 0.87, 0.1);
                let clay = -0.06 * gauss(wl, 2.2, 0.08);
                (0.12 + 0.3 * brightness) + slope + iron + clay
            }
            Family::ManMade { albedo } => {
                let tilt = 0.05 * (wl - 1.0);
                0.15 + 0.45 * albedo + tilt
            }
            Family::Water => {
                let blue = 0.08 * gauss(wl, 0.49, 0.07);
                let cutoff = 1.0 - sigmoid(wl, 0.75, 0.06);
                0.015 + (blue + 0.04) * cutoff
            }
            Family::DryVegetation { brightness } => {
                let yellow_slope = 0.20 * sigmoid(wl, 0.6, 0.08);
                let cellulose = -0.08 * gauss(wl, 2.1, 0.08);
                let lignin = -0.05 * gauss(wl, 1.73, 0.05);
                let water = -0.10 * gauss(wl, 1.94, 0.07);
                0.10 + 0.25 * brightness + yellow_slope + cellulose + lignin + water
            }
        };
        r.clamp(0.005, 0.95)
    }

    /// Sample the signature into `bands` channels, scaled to AVIRIS-like
    /// radiance counts (`scale` ≈ sensor gain), with a deterministic
    /// class-specific spectral perturbation so same-family classes stay
    /// distinct.
    pub fn sample(&self, bands: usize, scale: f32, perturb_seed: u64) -> Vec<f32> {
        let mut out = Vec::with_capacity(bands);
        // Three deterministic low-frequency perturbation components.
        let s = perturb_seed as f64;
        let (a1, a2, a3) = (
            0.055 * ((s * 0.731).sin()),
            0.045 * ((s * 1.137).cos()),
            0.040 * ((s * 2.389).sin()),
        );
        let (c1, c2, c3) = (
            0.6 + 0.8 * frac(s * 0.173),
            1.0 + 1.0 * frac(s * 0.419),
            1.6 + 0.8 * frac(s * 0.617),
        );
        for b in 0..bands {
            let wl = wavelength(b, bands);
            let base = self.reflectance(wl);
            let bump =
                a1 * gauss(wl, c1, 0.15) + a2 * gauss(wl, c2, 0.2) + a3 * gauss(wl, c3, 0.18);
            let v = ((base + bump).clamp(0.003, 0.98) * scale as f64) as f32;
            out.push(v.max(1.0));
        }
        out
    }
}

#[inline]
fn frac(x: f64) -> f64 {
    x - x.floor()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsi::spectral::sid;

    #[test]
    fn wavelengths_span_aviris_range() {
        assert!((wavelength(0, 216) - 0.4).abs() < 0.01);
        assert!((wavelength(215, 216) - 2.5).abs() < 0.01);
        assert!(wavelength(100, 216) > wavelength(50, 216));
    }

    #[test]
    fn vegetation_has_red_edge() {
        let veg = Family::Vegetation {
            vigor: 0.9,
            canopy: 1.0,
        };
        // NIR (0.8 µm) reflectance far exceeds red (0.67 µm).
        assert!(veg.reflectance(0.85) > 2.0 * veg.reflectance(0.67));
    }

    #[test]
    fn water_is_dark_in_infrared() {
        let w = Family::Water;
        assert!(w.reflectance(1.5) < 0.03);
        assert!(w.reflectance(0.5) > w.reflectance(1.5));
    }

    #[test]
    fn soil_brightness_parameter_monotone() {
        let dark = Family::Soil { brightness: 0.1 };
        let bright = Family::Soil { brightness: 0.9 };
        for wl in [0.5, 1.0, 2.0] {
            assert!(bright.reflectance(wl) > dark.reflectance(wl));
        }
    }

    #[test]
    fn reflectance_stays_physical() {
        let families = [
            Family::Vegetation {
                vigor: 0.0,
                canopy: 0.3,
            },
            Family::Vegetation {
                vigor: 1.0,
                canopy: 1.0,
            },
            Family::Soil { brightness: 1.0 },
            Family::ManMade { albedo: 1.0 },
            Family::Water,
            Family::DryVegetation { brightness: 0.5 },
        ];
        for f in families {
            for b in 0..216 {
                let r = f.reflectance(wavelength(b, 216));
                assert!((0.0..=1.0).contains(&r), "{f:?} at band {b}: {r}");
            }
        }
    }

    #[test]
    fn sample_is_deterministic_and_positive() {
        let veg = Family::Vegetation {
            vigor: 0.5,
            canopy: 0.8,
        };
        let a = veg.sample(216, 4000.0, 7);
        let b = veg.sample(216, 4000.0, 7);
        assert_eq!(a, b);
        assert!(a.iter().all(|&v| v >= 1.0));
        assert_eq!(a.len(), 216);
    }

    #[test]
    fn perturbation_separates_same_family_classes() {
        let veg = Family::Vegetation {
            vigor: 0.5,
            canopy: 0.8,
        };
        let a = veg.sample(216, 4000.0, 1);
        let b = veg.sample(216, 4000.0, 2);
        assert!(sid(&a, &b) > 1e-5, "SID = {}", sid(&a, &b));
    }

    #[test]
    fn families_are_spectrally_distinct() {
        let bands = 216;
        let sigs: Vec<Vec<f32>> = [
            Family::Vegetation {
                vigor: 0.8,
                canopy: 0.9,
            },
            Family::Soil { brightness: 0.6 },
            Family::ManMade { albedo: 0.7 },
            Family::Water,
            Family::DryVegetation { brightness: 0.6 },
        ]
        .iter()
        .map(|f| f.sample(bands, 4000.0, 0))
        .collect();
        for i in 0..sigs.len() {
            for j in i + 1..sigs.len() {
                assert!(
                    sid(&sigs[i], &sigs[j]) > 1e-3,
                    "families {i} and {j} too similar"
                );
            }
        }
    }
}
